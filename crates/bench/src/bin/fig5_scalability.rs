//! Figure 5 — scalability of the global manager.
//!
//! "The CPU utilizations of the central management node increase
//! non-linearly with the sizes of A_candidate."
//!
//! Two series over |A_candidate| ∈ {0, 8, 16, 32, 48, 64, 96, 128}:
//!
//! * **measured** — wall-clock cost of the *real* management code path
//!   (collector ingestion → job-observation building → Algorithm 1 with
//!   MPC selection) per control cycle, on synthetic samples, expressed as
//!   utilization of one management core at the paper's 1 s cycle;
//! * **modeled** — the calibrated analytic curve used inside simulations
//!   (`ppc_telemetry::cost::ManagementCostModel`), which matches the
//!   testbed's convex shape.

use ppc_cluster::output::render_table;
use ppc_core::capping::LevelView;
use ppc_core::observe::observe_jobs;
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_node::spec::NodeSpec;
use ppc_node::{Level, NodeId, OperatingState};
use ppc_simkit::{RngFactory, SimTime};
use ppc_telemetry::cost::{CycleCostMeter, ManagementCostModel};
use ppc_telemetry::AggregationTree;
use ppc_telemetry::{Collector, NodeSample};
use ppc_workload::JobId;
use std::sync::Arc;

struct FlatView;
impl LevelView for FlatView {
    fn level_of(&self, _: NodeId) -> Level {
        Level::new(5)
    }
    fn highest_of(&self, _: NodeId) -> Level {
        Level::new(9)
    }
}

/// Measured per-cycle management cost for `n` monitored nodes, seconds.
fn measure_cycle_cost(n: usize, cycles: u64) -> f64 {
    let spec = NodeSpec::tianhe_1a();
    let model = spec.power_model(1.0);
    let factory = RngFactory::new(42);
    let mut rng = factory.stream("fig5", n as u64);
    let sets = NodeSets::new((0..n as u32).map(NodeId), []);
    let mut manager = PowerManager::new(
        ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(30_000.0, PolicyKind::Mpc)
        },
        sets,
    )
    .expect("valid config");
    let candidates = manager.sets().candidates().clone();
    let mut collector = Collector::new();
    // Jobs of 8 nodes each, covering the monitored pool.
    let jobs: Vec<(JobId, Vec<NodeId>)> = (0..n / 8)
        .map(|j| {
            (
                JobId(j as u64),
                (0..8).map(|k| NodeId((j * 8 + k) as u32)).collect(),
            )
        })
        .collect();

    let mut meter = CycleCostMeter::new();
    for cycle in 0..cycles {
        let at = SimTime::from_secs(cycle);
        let samples: Vec<NodeSample> = (0..n as u32)
            .map(|i| {
                let state = OperatingState {
                    cpu_util: 0.5 + 0.4 * rng.f64(),
                    mem_used_bytes: 8 << 30,
                    nic_bytes: (rng.f64() * 1e8) as u64,
                };
                NodeSample {
                    node: NodeId(i),
                    at,
                    state,
                    level: Level::new(5),
                    power_w: model.power_w(Level::new(5), &state),
                }
            })
            .collect();
        // Always-yellow power keeps the selection policy on the hot path.
        let power_w = 26_000.0;
        let m = Arc::clone(&model);
        meter.measure(|| {
            // Batch ingest: one management node's own CPU cost (the
            // quantity Figure 5 plots).
            collector.ingest_batch(&samples);
            let obs = observe_jobs(
                &collector,
                jobs.iter().map(|(id, ns)| (*id, ns.as_slice())),
                &candidates,
                &|_| Arc::clone(&m),
            );
            manager.control_cycle(power_w, &obs, &FlatView)
        });
    }
    meter.mean_cycle_secs()
}

fn main() {
    let sizes = [0usize, 8, 16, 32, 48, 64, 96, 128];
    let cycle_period_secs = 1.0;
    let model = ManagementCostModel::tianhe_1a();
    let tree = AggregationTree::management_ethernet();

    println!("Figure 5 — scalability of the global manager\n");
    let mut rows = Vec::new();
    for &n in &sizes {
        // Warm up, then measure.
        measure_cycle_cost(n, 50);
        let cost = measure_cycle_cost(n, 400);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", cost * 1e6),
            format!("{:.3}%", cost / cycle_period_secs * 100.0),
            format!("{:.1}%", tree.utilization(n, cycle_period_secs) * 100.0),
            format!("{:.1}%", model.utilization(n) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "|A_candidate|",
                "measured us/cycle",
                "measured util (1s cycle)",
                "incast-tree util (mechanistic)",
                "modeled util (testbed-calibrated)",
            ],
            &rows
        )
    );
    println!(
        "The measured series is this implementation's in-process cost (near-linear,\n\
         microseconds — modern hardware; the paper's testbed also paid per-node\n\
         management-network collection). The modeled series is calibrated to the\n\
         testbed's convex curve, which includes aggregation/incast contention that\n\
         grows super-linearly with the monitored-node count. Either way the lesson\n\
         of Figure 5 holds: monitor a candidate subset, not the whole machine."
    );
}
