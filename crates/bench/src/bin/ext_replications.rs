//! Extension — statistical robustness of the headline results.
//!
//! The paper reports one 12-hour run per policy. This binary replicates
//! the Figure-7 experiment over five independent seeds and reports each
//! headline metric as mean ± sample standard deviation, plus a bootstrap
//! 95% CI of the per-job performance ratio within the canonical seed —
//! showing that the reproduction's conclusions do not hinge on one lucky
//! workload draw.

use ppc_bench::paper_config;
use ppc_cluster::experiment::run_replicated;
use ppc_cluster::output::render_table;
use ppc_core::PolicyKind;
use ppc_metrics::bootstrap_mean_ci;
use ppc_simkit::RngFactory;

const SEEDS: [u64; 5] = [20120521, 1, 2, 3, 4];

fn main() {
    println!("Extension — five-seed replications of the Figure-7 experiment\n");
    let mut rows = Vec::new();
    let mut per_policy = Vec::new();
    for policy in [None, Some(PolicyKind::Mpc), Some(PolicyKind::Hri)] {
        let label = policy.map(|p| p.to_string()).unwrap_or("uncapped".into());
        eprintln!("replicating {label} over {} seeds …", SEEDS.len());
        let rep = run_replicated(&paper_config(policy, None), &SEEDS);
        rows.push(vec![
            label.clone(),
            format!(
                "{:.4} ± {:.4}",
                rep.performance.mean, rep.performance.std_dev
            ),
            format!(
                "{:.1}% ± {:.1}%",
                rep.cplj_fraction.mean * 100.0,
                rep.cplj_fraction.std_dev * 100.0
            ),
            format!(
                "{:.2} ± {:.2}",
                rep.p_max_w.mean / 1e3,
                rep.p_max_w.std_dev / 1e3
            ),
            format!("{:.5} ± {:.5}", rep.overspend.mean, rep.overspend.std_dev),
        ]);
        per_policy.push((label, rep));
    }
    println!(
        "{}",
        render_table(
            &["policy", "Performance", "CPLJ", "P_max kW", "ΔP×T"],
            &rows
        )
    );

    // Cross-seed conclusions.
    let find = |name: &str| {
        per_policy
            .iter()
            .find(|(l, _)| l == name)
            .map(|(_, r)| r)
            .expect("ran above")
    };
    let (unc, mpc, hri) = (find("uncapped"), find("MPC"), find("HRI"));
    let mpc_wins_overspend = mpc
        .outcomes
        .iter()
        .zip(&hri.outcomes)
        .filter(|(m, h)| m.metrics.overspend <= h.metrics.overspend)
        .count();
    let capped_every_seed = mpc
        .outcomes
        .iter()
        .zip(&unc.outcomes)
        .all(|(m, u)| m.metrics.p_max_w < u.metrics.p_max_w);
    println!(
        "MPC beats HRI on ΔP×T in {}/{} seeds; capping reduced P_max in {}",
        mpc_wins_overspend,
        SEEDS.len(),
        if capped_every_seed {
            "every seed"
        } else {
            "NOT every seed"
        },
    );

    // Within-run bootstrap of the canonical seed's per-job ratios.
    let canonical = &mpc.outcomes[0];
    let ratios: Vec<f64> = canonical
        .records
        .iter()
        .map(|r| r.performance_ratio())
        .collect();
    let mut rng = RngFactory::new(99).stream("bootstrap", 0);
    let ci = bootstrap_mean_ci(&ratios, 2_000, 0.95, &mut rng);
    println!(
        "canonical-seed MPC Performance(cap): {:.4}, bootstrap 95% CI [{:.4}, {:.4}] over {} jobs",
        ci.mean,
        ci.lo,
        ci.hi,
        ratios.len()
    );
}
