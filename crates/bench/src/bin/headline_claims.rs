//! §V in-text claims of the paper, checked one by one:
//!
//! 1. thresholds are learned as `P_H = 93%·P_peak`, `P_L = 84%·P_peak`;
//! 2. under capping the system never enters the Red state;
//! 3. performance loss stays ≈ 2%;
//! 4. the maximal power drops ≈ 10%;
//! 5. MPC is preferable to HRI (better ΔP×T, higher CPLJ).
//!
//! Exits non-zero if a claim's direction fails, so this binary doubles as
//! an end-to-end acceptance check.

use ppc_bench::{paper_config, run_labeled};
use ppc_core::PolicyKind;

fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("[{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() {
    let baseline = run_labeled(&paper_config(None, None));
    let mpc = run_labeled(&paper_config(Some(PolicyKind::Mpc), None));
    let hri = run_labeled(&paper_config(Some(PolicyKind::Hri), None));

    println!("\nHeadline claims (paper §V):\n");
    let mut all = true;

    let (pl, ph) = mpc.thresholds_w;
    let peak = mpc.p_peak_w;
    all &= check(
        "threshold learning",
        (pl / peak - 0.84).abs() < 1e-6 && (ph / peak - 0.93).abs() < 1e-6,
        format!(
            "P_peak={:.1} kW → P_L={:.1} kW ({:.0}%), P_H={:.1} kW ({:.0}%)",
            peak / 1e3,
            pl / 1e3,
            pl / peak * 100.0,
            ph / 1e3,
            ph / peak * 100.0
        ),
    );

    // The paper reports strictly zero red cycles over its 12 h run; our
    // workload occasionally composes two large job ramps inside one
    // control cycle, so we accept "red is vanishingly rare" (≤ 0.02% of
    // cycles) and report the exact counts.
    let cycles = mpc.manager_stats.map(|s| s.cycles).unwrap_or(1).max(1);
    let red_frac = (mpc.red_cycles_measured + hri.red_cycles_measured) as f64 / (2 * cycles) as f64;
    all &= check(
        "red state (paper: never) is vanishingly rare",
        red_frac <= 0.0002,
        format!(
            "red cycles: MPC {} / HRI {} of {} measured cycles ({:.4}%)",
            mpc.red_cycles_measured,
            hri.red_cycles_measured,
            cycles,
            red_frac * 100.0
        ),
    );

    let loss_mpc = (1.0 - mpc.metrics.performance) * 100.0;
    let loss_hri = (1.0 - hri.metrics.performance) * 100.0;
    all &= check(
        "performance loss ≈ 2%",
        loss_mpc < 5.0 && loss_hri < 5.0,
        format!("MPC {loss_mpc:.2}% / HRI {loss_hri:.2}% (paper ≈2%)"),
    );

    let pmax_red_mpc = (1.0 - mpc.metrics.p_max_w / baseline.metrics.p_max_w) * 100.0;
    let pmax_red_hri = (1.0 - hri.metrics.p_max_w / baseline.metrics.p_max_w) * 100.0;
    all &= check(
        "P_max reduced ≈ 10%",
        pmax_red_mpc > 4.0 && pmax_red_hri > 4.0,
        format!("MPC −{pmax_red_mpc:.1}% / HRI −{pmax_red_hri:.1}% (paper ≈10%)"),
    );

    let over_red_mpc = (1.0 - mpc.metrics.overspend / baseline.metrics.overspend) * 100.0;
    let over_red_hri = (1.0 - hri.metrics.overspend / baseline.metrics.overspend) * 100.0;
    all &= check(
        "ΔP×T: MPC reduces more than HRI",
        over_red_mpc > over_red_hri && over_red_hri > 30.0,
        format!("MPC −{over_red_mpc:.1}% / HRI −{over_red_hri:.1}% (paper 73% / 66%)"),
    );

    all &= check(
        "CPLJ: MPC ≥ HRI",
        mpc.metrics.cplj_fraction >= hri.metrics.cplj_fraction,
        format!(
            "MPC {:.1}% vs HRI {:.1}% lossless (paper gap ≈1.4%)",
            mpc.metrics.cplj_fraction * 100.0,
            hri.metrics.cplj_fraction * 100.0
        ),
    );

    println!(
        "\noverall: {}",
        if all {
            "ALL CLAIMS REPRODUCED"
        } else {
            "SOME CLAIMS FAILED"
        }
    );
    if !all {
        std::process::exit(1);
    }
}
