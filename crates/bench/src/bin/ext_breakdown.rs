//! Extension — per-application and per-size performance breakdown.
//!
//! The paper reports one aggregate Performance(cap) number; breaking it
//! down by benchmark exposes *why* capping is cheap: DVFS hurts
//! compute-bound codes (EP, α=0.95, time ∝ 1/f) far more than
//! memory-/communication-bound ones (CG, α=0.40, nearly
//! frequency-insensitive). Large jobs also suffer more under MPC — they
//! *are* the most power consuming job the policy keeps selecting.

use ppc_bench::{paper_config, run_labeled};
use ppc_cluster::output::render_table;
use ppc_core::PolicyKind;
use ppc_metrics::performance::performance_by;
use ppc_workload::NpbApp;

fn main() {
    let mpc = run_labeled(&paper_config(Some(PolicyKind::Mpc), None));
    let hri = run_labeled(&paper_config(Some(PolicyKind::Hri), None));

    println!("Extension — performance breakdown (measurement window)\n");

    println!("by application (compute-boundness α in parentheses):\n");
    let by_app_mpc = performance_by(&mpc.records, |r| r.app);
    let by_app_hri = performance_by(&hri.records, |r| r.app);
    let mut rows = Vec::new();
    for app in NpbApp::ALL {
        let alpha = app.profile().compute_alpha;
        rows.push(vec![
            format!("{app} (α={alpha:.2})"),
            by_app_mpc
                .get(&app)
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
            by_app_hri
                .get(&app)
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!(
        "{}",
        render_table(&["app", "Performance (MPC)", "Performance (HRI)"], &rows)
    );

    println!("by NPROCS (node footprint in parentheses):\n");
    let by_size_mpc = performance_by(&mpc.records, |r| r.nprocs);
    let by_size_hri = performance_by(&hri.records, |r| r.nprocs);
    let mut rows = Vec::new();
    for nprocs in [8u32, 16, 32, 64, 128, 256] {
        let nodes = nprocs.div_ceil(12);
        rows.push(vec![
            format!("{nprocs} ({nodes} nodes)"),
            by_size_mpc
                .get(&nprocs)
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
            by_size_hri
                .get(&nprocs)
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!(
        "{}",
        render_table(&["NPROCS", "Performance (MPC)", "Performance (HRI)"], &rows)
    );
    println!(
        "Reading: compute-bound EP pays the most for each DVFS step; CG barely\n\
         notices. MPC concentrates its cuts on the biggest jobs (they are the\n\
         most power-consuming), so large-NPROCS rows dip furthest under MPC."
    );
}
