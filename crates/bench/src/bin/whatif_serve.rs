//! whatif_serve — the long-running what-if service benchmark.
//!
//! Stands up the paper-scale managed cluster (128 Tianhe-1A nodes, MPC
//! policy), advances it to a busy steady state, snapshots it, and then
//! serves a sustained stream of what-if queries against the snapshot the
//! way an operator console would: one request at a time, each a full
//! branch-and-simulate projection. Reports service throughput and
//! per-query latency percentiles:
//!
//! ```text
//! cargo run --release -p ppc-bench --bin whatif_serve
//! git diff BENCH_ppc.json   # compare against the committed baseline
//! ```
//!
//! Flags:
//!
//! * `--queries N` — stream length (default 4000);
//! * `--horizon T` — projection horizon in ticks (default 30);
//! * `--warmup T` — base-sim warmup ticks before the snapshot (default 300);
//! * `--smoke` — CI mode: short stream, print JSON to stdout, do **not**
//!   touch `BENCH_ppc.json`, and fail if re-serving the identical stream
//!   changes any answer or engine fingerprint (the service-layer
//!   determinism check).
//!
//! In full mode the results are merged into `BENCH_ppc.json` under the
//! `"whatif"` key (the rest of the file is preserved).
//!
//! The query mix cycles through every kind — baseline, admit-jobs,
//! set-cap, drop-nodes, swap-policy — with index-derived parameters, so
//! the stream is deterministic and self-describing.

use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_whatif::{ClusterSnapshot, JobSpec, WhatIfEngine, WhatIfQuery, WhatIfRequest};
use ppc_workload::{Class, NpbApp};
use std::time::Instant;

/// The paper-scale managed base simulation the service snapshots.
fn base_sim() -> ClusterSim {
    let spec = ClusterSpec::tianhe_1a_variant();
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    // A service clones the base per query: keep the journal ring small so
    // a branch costs column/RNG copies, not thousands of String clones.
    ClusterSim::new(spec)
        .with_manager(manager)
        .with_journal_capacity(256)
}

/// The deterministic query stream: index `i` fully determines the query.
fn request(i: usize, horizon: u64, provision_w: f64) -> WhatIfRequest {
    let v = i / 5; // per-kind variant counter
    let query = match i % 5 {
        0 => WhatIfQuery::Baseline,
        1 => WhatIfQuery::AdmitJobs {
            jobs: vec![JobSpec {
                app: NpbApp::ALL[v % NpbApp::ALL.len()],
                class: Class::C,
                nprocs: 32 + 32 * (v % 4) as u32,
                critical: v.is_multiple_of(7),
            }],
        },
        2 => WhatIfQuery::SetCap {
            provision_w: provision_w * (0.85 + 0.05 * (v % 7) as f64),
        },
        3 => WhatIfQuery::DropNodes {
            count: 1 + (v % 4) as u32,
            rack: None,
        },
        _ => WhatIfQuery::SwapPolicy {
            policy: PolicyKind::ALL[v % PolicyKind::ALL.len()],
        },
    };
    WhatIfRequest::new(query, horizon)
}

/// Percentile by nearest-rank over a sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let mut smoke = false;
    let mut queries = 4000usize;
    let mut horizon = 30u64;
    let mut warmup = 300u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--queries" => queries = args.next().expect("--queries <n>").parse().expect("count"),
            "--horizon" => horizon = args.next().expect("--horizon <t>").parse().expect("ticks"),
            "--warmup" => warmup = args.next().expect("--warmup <t>").parse().expect("ticks"),
            other => {
                panic!("unknown flag {other} (expected --smoke | --queries | --horizon | --warmup)")
            }
        }
    }
    if smoke {
        queries = queries.min(200);
    }

    let mut sim = base_sim();
    for _ in 0..warmup {
        sim.step();
    }
    let provision_w = sim.spec().provision_w();
    let snapshot = ClusterSnapshot::capture(&sim);
    let nodes = snapshot.base().spec().node_count;
    let branch_tick = snapshot.tick();

    let stream: Vec<WhatIfRequest> = (0..queries)
        .map(|i| request(i, horizon, provision_w))
        .collect();

    // The service loop: one query at a time, as a console would submit
    // them; each is a full branch-and-simulate projection.
    let mut engine = WhatIfEngine::new(snapshot.clone());
    let mut latencies_us = Vec::with_capacity(queries);
    let mut admitted = 0usize;
    let served = Instant::now();
    for req in &stream {
        let t = Instant::now();
        let answers = engine.run_batch(std::slice::from_ref(req));
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        admitted += usize::from(answers[0].admit);
    }
    let elapsed = served.elapsed().as_secs_f64();
    let throughput_qps = queries as f64 / elapsed;
    let span_fp = engine.span_fingerprint();
    let metrics_fp = engine.metrics_fingerprint();

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let p50_us = percentile(&latencies_us, 50.0);
    let p99_us = percentile(&latencies_us, 99.0);

    if smoke {
        // Service-layer determinism: the identical stream against a fresh
        // engine on the same snapshot must reproduce every answer and
        // both engine fingerprints.
        let first: Vec<_> = WhatIfEngine::new(snapshot.clone()).run_batch(&stream);
        let mut again = WhatIfEngine::new(snapshot);
        let second = again.run_batch(&stream);
        assert_eq!(first, second, "re-served stream changed an answer");
        assert_eq!(
            span_fp,
            again.span_fingerprint(),
            "span fingerprint diverged"
        );
        assert_eq!(
            metrics_fp,
            again.metrics_fingerprint(),
            "metrics fingerprint diverged"
        );
        eprintln!("whatif_serve: determinism ok — {queries} queries replay bit-identically");
    }

    let report = serde_json::json!({
        "nodes": nodes,
        "branch_tick": branch_tick,
        "horizon_ticks": horizon,
        "queries": queries,
        "throughput_qps": throughput_qps,
        "latency_us": { "p50": p50_us, "p99": p99_us },
        "admitted": admitted,
        "denied": queries - admitted,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("serializable");
    println!("{rendered}");
    eprintln!(
        "whatif_serve: {queries} queries in {elapsed:.3}s — {throughput_qps:.0} q/s, \
         p50 {p50_us:.0}us, p99 {p99_us:.0}us"
    );

    if !smoke {
        // Merge under "whatif", preserving the rest of the committed file.
        let mut doc: serde_json::Value = std::fs::read_to_string("BENCH_ppc.json")
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_else(|| serde_json::json!({}));
        let serde_json::Value::Object(entries) = &mut doc else {
            panic!("BENCH_ppc.json is not a JSON object");
        };
        entries.retain(|(k, _)| k != "whatif");
        entries.push(("whatif".to_string(), report));
        let out = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write("BENCH_ppc.json", format!("{out}\n")).expect("write BENCH_ppc.json");
        eprintln!("updated BENCH_ppc.json (whatif section)");
    }
}
