//! Extension — the paper's future work ("implementing other selection
//! policies and conducting more experiments").
//!
//! Runs every implemented policy — the paper's MPC and HRI plus MPC-C
//! (Algorithm 2), LPC, LPC-C, BFP and HRI-C — and the two related-work
//! baselines (UNIFORM ensemble capping, fair round-robin) on the
//! identical workload, reporting the full metric suite against the
//! unmanaged run. The gap between MPC and UNIFORM/RR is the measurable
//! value of the paper's job-aware target selection.

use ppc_bench::{paper_config, run_labeled};
use ppc_cluster::output::render_table;
use ppc_core::PolicyKind;

fn main() {
    let baseline = run_labeled(&paper_config(None, None));
    println!("Extension — all seven target-set selection policies\n");

    let mut rows = vec![{
        let m = &baseline.metrics;
        vec![
            m.label.clone(),
            format!("{:.4}", m.performance),
            format!("{:.1}%", m.cplj_fraction * 100.0),
            format!("{:.2}", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            "-".to_string(),
            "0".to_string(),
        ]
    }];
    for policy in PolicyKind::ALL {
        let out = run_labeled(&paper_config(Some(policy), None));
        let m = &out.metrics;
        rows.push(vec![
            m.label.clone(),
            format!("{:.4}", m.performance),
            format!("{:.1}%", m.cplj_fraction * 100.0),
            format!("{:.2}", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            format!(
                "{:.1}%",
                (1.0 - m.overspend / baseline.metrics.overspend) * 100.0
            ),
            out.manager_stats
                .map(|s| s.commands_issued.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "Performance",
                "CPLJ %",
                "P_max kW",
                "ΔP×T",
                "ΔP×T reduction",
                "commands",
            ],
            &rows
        )
    );
    println!(
        "Collection policies (MPC-C, LPC-C, HRI-C) cover the deficit in one\n\
         cycle and so converge faster at the cost of touching more jobs;\n\
         BFP seeks the single job whose saving best fits the deficit.\n\
         UNIFORM (ensemble-style, every node equal) maximizes the per-cycle\n\
         cut but slows every running job; RR is fair and power-blind. The\n\
         CPLJ gap between them and MPC is what job-aware selection buys."
    );
}
