//! Ablations over the design choices §III leaves as parameters:
//!
//! * `T_g` — how long the system must stay Green before recovery starts;
//! * the threshold margins (paper: 16%/7% after Fan et al.);
//! * meter-noise sensitivity (the Observability assumption's "sufficient
//!   accuracy");
//! * think-time (workload burstiness) sensitivity.
//!
//! Each sweep holds everything else at the paper configuration with the
//! MPC policy.

use ppc_bench::{paper_config, run_labeled};
use ppc_cluster::experiment::run_experiment;
use ppc_cluster::output::render_table;
use ppc_core::PolicyKind;
use ppc_simkit::SimDuration;
use ppc_telemetry::NoiseModel;

fn row(label: String, out: &ppc_cluster::experiment::ExperimentOutcome) -> Vec<String> {
    let m = &out.metrics;
    vec![
        label,
        format!("{:.4}", m.performance),
        format!("{:.1}%", m.cplj_fraction * 100.0),
        format!("{:.2}", m.p_max_w / 1e3),
        format!("{:.5}", m.overspend),
        out.red_cycles_measured.to_string(),
        out.manager_stats
            .map(|s| s.commands_issued.to_string())
            .unwrap_or_default(),
    ]
}

const HEADERS: [&str; 7] = [
    "variant",
    "Performance",
    "CPLJ %",
    "P_max kW",
    "ΔP×T",
    "red",
    "commands",
];

fn main() {
    println!("Ablation 1 — recovery patience T_g (paper: 10 cycles)\n");
    let mut rows = Vec::new();
    for t_g in [1u64, 5, 10, 30, 120] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        cfg.t_g_cycles = t_g;
        rows.push(row(format!("T_g={t_g}"), &run_labeled(&cfg)));
    }
    println!("{}", render_table(&HEADERS, &rows));

    println!("Ablation 2 — threshold margins (paper: low 16% / high 7%)\n");
    let mut rows = Vec::new();
    for (low, high) in [(0.10, 0.04), (0.16, 0.07), (0.24, 0.12), (0.32, 0.16)] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        // Margins live in the manager config built by the runner; thread
        // them through the experiment config's spec-independent knobs.
        let out = run_experiment_with_margins(&mut cfg, low, high);
        rows.push(row(format!("low={low:.2}/high={high:.2}"), &out));
    }
    println!("{}", render_table(&HEADERS, &rows));

    println!("Ablation 3 — facility-meter noise (Observability)\n");
    let mut rows = Vec::new();
    for std in [0.0, 0.01, 0.03, 0.08] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        cfg.spec.meter_noise = NoiseModel {
            relative_std: std,
            dropout_prob: 0.0,
        };
        rows.push(row(
            format!("meter σ={:.0}%", std * 100.0),
            &run_labeled(&cfg),
        ));
    }
    println!("{}", render_table(&HEADERS, &rows));

    println!("Ablation 4 — agent sample dropout (failure injection)\n");
    let mut rows = Vec::new();
    for drop in [0.0, 0.05, 0.20, 0.50] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        cfg.spec.agent_noise = NoiseModel {
            relative_std: 0.0,
            dropout_prob: drop,
        };
        rows.push(row(
            format!("dropout={:.0}%", drop * 100.0),
            &run_labeled(&cfg),
        ));
    }
    println!("{}", render_table(&HEADERS, &rows));

    println!("Ablation 5 — workload burstiness (mean think time)\n");
    let mut rows = Vec::new();
    for secs in [5u64, 15, 45] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        cfg.spec.think_time_mean = SimDuration::from_secs(secs);
        rows.push(row(format!("think={secs}s"), &run_labeled(&cfg)));
    }
    println!("{}", render_table(&HEADERS, &rows));

    println!("Ablation 6 — scheduler admission (FIFO vs backfill, queue depth 4)\n");
    let mut rows = Vec::new();
    for (label, backfill, depth) in [
        ("FIFO depth=1 (paper)", false, 1usize),
        ("FIFO depth=4", false, 4),
        ("backfill depth=4", true, 4),
    ] {
        let mut cfg = paper_config(Some(PolicyKind::Mpc), None);
        cfg.spec.backfill = backfill;
        cfg.spec.queue_depth = depth;
        rows.push(row(label.to_string(), &run_labeled(&cfg)));
    }
    println!("{}", render_table(&HEADERS, &rows));
    println!(
        "With a deeper queue, backfill keeps small jobs flowing past a blocked\n\
         head: utilization and mean power rise, stressing the capping loop\n\
         harder than the paper's single-slot queue ever does."
    );
}

/// Runs with explicit threshold margins (the experiment runner uses the
/// paper margins by default; this clones its logic with overrides).
fn run_experiment_with_margins(
    cfg: &mut ppc_cluster::experiment::ExperimentConfig,
    low: f64,
    high: f64,
) -> ppc_cluster::experiment::ExperimentOutcome {
    cfg.low_margin = Some(low);
    cfg.high_margin = Some(high);
    eprintln!("running margins {low:.2}/{high:.2} …");
    run_experiment(cfg)
}
