//! Figure 7 — power capping results of different policies.
//!
//! All 128 nodes in A_candidate; MPC and HRI against the unmanaged
//! baseline. Paper results this regenerates: system performance loss
//! ≈ 2% under either policy, maximal power reduced ≈ 10%, ΔP×T reduced
//! by 73% (MPC) and 66% (HRI), and CPLJ higher under MPC than HRI
//! (by ≈ 1.4% of jobs).

use ppc_bench::{paper_config, run_labeled};
use ppc_cluster::output::render_table;
use ppc_core::PolicyKind;

fn main() {
    let baseline = run_labeled(&paper_config(None, None));
    let mpc = run_labeled(&paper_config(Some(PolicyKind::Mpc), None));
    let hri = run_labeled(&paper_config(Some(PolicyKind::Hri), None));

    println!("Figure 7 — power capping results of different policies\n");
    let mut rows = Vec::new();
    for out in [&baseline, &mpc, &hri] {
        let m = &out.metrics;
        let n = m.normalize_against(&baseline.metrics);
        rows.push(vec![
            out.label.clone(),
            format!("{:.4}", m.performance),
            format!("{}/{}", m.cplj, m.jobs_finished),
            format!("{:.1}%", m.cplj_fraction * 100.0),
            format!("{:.2}", m.p_max_w / 1e3),
            format!("{:.4}", n.p_max),
            format!("{:.5}", m.overspend),
            format!("{:.1}%", (1.0 - n.overspend) * 100.0),
            out.red_cycles_measured.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "Performance(cap)",
                "CPLJ",
                "CPLJ %",
                "P_max kW",
                "P_max norm.",
                "ΔP×T",
                "ΔP×T reduction",
                "red cycles",
            ],
            &rows
        )
    );

    let cplj_gap = (mpc.metrics.cplj_fraction - hri.metrics.cplj_fraction) * 100.0;
    println!("paper-vs-measured summary:");
    println!(
        "  performance loss: paper ≈2%% both → measured MPC {:.1}%%, HRI {:.1}%%",
        (1.0 - mpc.metrics.performance) * 100.0,
        (1.0 - hri.metrics.performance) * 100.0
    );
    println!(
        "  P_max reduction:  paper ≈10%% → measured MPC {:.1}%%, HRI {:.1}%%",
        (1.0 - mpc.metrics.p_max_w / baseline.metrics.p_max_w) * 100.0,
        (1.0 - hri.metrics.p_max_w / baseline.metrics.p_max_w) * 100.0
    );
    println!(
        "  ΔP×T reduction:   paper 73%% (MPC) / 66%% (HRI) → measured {:.1}%% / {:.1}%%",
        (1.0 - mpc.metrics.overspend / baseline.metrics.overspend) * 100.0,
        (1.0 - hri.metrics.overspend / baseline.metrics.overspend) * 100.0
    );
    println!(
        "  CPLJ: paper MPC > HRI by ≈1.4%% → measured gap {cplj_gap:.1}%% (MPC {} vs HRI {})",
        mpc.metrics.cplj, hri.metrics.cplj
    );
    println!(
        "  safety: paper 'never entered red' → measured red cycles MPC {} / HRI {}",
        mpc.red_cycles_measured, hri.red_cycles_measured
    );
}
