//! Extension — the thermal story behind the paper's motivation (§I).
//!
//! The paper justifies capping with reliability: node failure rate
//! doubles every 10 °C, and hot chips leak more power (a positive
//! feedback loop). With the RC thermal model enabled on every node, this
//! binary quantifies what capping buys thermally:
//!
//! * peak die temperature, uncapped vs MPC-capped;
//! * the failure-rate integral `∫ 2^((T−T_amb)/10) dt` (the reliability
//!   analogue of ΔP×T);
//! * the size of the leakage feedback itself.

use ppc_bench::{default_measurement, default_training};
use ppc_cluster::experiment::{run_experiment, ExperimentConfig};
use ppc_cluster::output::render_table;
use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc_node::spec::NodeSpec;

fn thermal_spec() -> ClusterSpec {
    ClusterSpec {
        node_spec: NodeSpec::tianhe_1a_thermal(),
        ..ClusterSpec::tianhe_1a_variant()
    }
}

fn run(policy: Option<PolicyKind>) -> (String, ClusterSim, ppc_simkit::SimTime) {
    let spec = thermal_spec();
    let training = default_training();
    let training_cycles = training.as_millis() / spec.tick.as_millis();
    let (label, mut sim) = match policy {
        None => ("uncapped".to_string(), ClusterSim::new(spec)),
        Some(p) => {
            let sets = NodeSets::new(spec.node_ids(), []);
            let config = ManagerConfig {
                training_cycles,
                ..ManagerConfig::paper_defaults(spec.provision_w(), p)
            };
            let manager = PowerManager::new(config, sets).expect("valid");
            (p.to_string(), ClusterSim::new(spec).with_manager(manager))
        }
    };
    eprintln!("running {label} with thermal model …");
    sim.run_for(training);
    let t0 = sim.now();
    sim.run_for(default_measurement());
    (label, sim, t0)
}

fn main() {
    println!("Extension — thermal effects of power capping\n");

    // The leakage feedback in isolation: compare the paper's
    // temperature-independent model with the thermal one, same workload.
    let plain_energy = {
        let mut cfg = ExperimentConfig::paper(None);
        cfg.training = default_training();
        cfg.measurement = default_measurement();
        run_experiment(&cfg).metrics.energy_j
    };

    let mut rows = Vec::new();
    let mut uncapped_integral = None;
    for policy in [None, Some(PolicyKind::Mpc), Some(PolicyKind::Hri)] {
        let (label, sim, t0) = run(policy);
        // All quantities over the measurement window only (the training
        // hour runs uncapped in every configuration).
        let peak_t = sim.peak_temperature_c().expect("thermal enabled");
        let integral = sim.failure_rate_integral().expect("thermal enabled");
        let wall = sim.now().as_secs_f64();
        let rate = integral / wall; // mean relative failure rate, whole run
        if policy.is_none() {
            uncapped_integral = Some(integral);
        }
        rows.push(vec![
            label,
            format!("{peak_t:.1} °C"),
            format!("{rate:.2}×"),
            match uncapped_integral {
                Some(u) if u > 0.0 => format!("{:.1}%", (1.0 - integral / u) * 100.0),
                _ => "-".to_string(),
            },
            format!(
                "{:.2} kW",
                sim.true_power().since(t0).max().unwrap_or(0.0) / 1e3
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "peak die temp",
                "mean failure rate vs ambient",
                "failure-integral reduction",
                "P_max",
            ],
            &rows
        )
    );

    // Leakage feedback magnitude: thermal vs plain energy on the
    // identical uncapped workload.
    let (_, thermal_sim, t0) = run(None);
    let thermal_energy = thermal_sim
        .true_power()
        .since(t0)
        .integrate(ppc_simkit::series::Interp::Step);
    println!(
        "leakage feedback: thermal model consumes {:.2}% more energy than the\n\
         temperature-independent Formula (1) on the identical uncapped workload\n\
         ({:.1} vs {:.1} MJ) — hot machines pay twice, exactly as §I argues.",
        (thermal_energy / plain_energy - 1.0) * 100.0,
        thermal_energy / 1e6,
        plain_energy / 1e6,
    );
}
