//! CI's dynamic replay-determinism gate.
//!
//! The static side (`ppc-lint`) keeps nondeterminism *sources* out of the
//! tree; this binary checks the property those rules protect: a seeded
//! end-to-end simulation — manager, scheduler, telemetry, fault injection
//! — must be bit-identical run to run and at every worker-pool width. It
//! runs the same managed, faulted experiment under pool widths 1 and 8
//! (inline threshold zero forces even a small cluster through the
//! parallel path) plus a same-width repeat, then compares:
//!
//! * the journal fingerprint (job lifecycle, state flips, commands,
//!   faults — an order-sensitive FNV-1a over every recorded event);
//! * an FNV-1a over the raw bits of the true-power trace;
//! * the control-cycle span-tree fingerprint and the metrics-registry
//!   fingerprint (the observability layer must replay bit-identically
//!   too — a nondeterministic attribute or counter is a trace you
//!   cannot diff);
//! * the three fleet-health fingerprints — rollup tree, quantile
//!   sketches (node power + modeled stage latency), SLO alert journal —
//!   pinning the health plane's per-shard sketch merge and burn-rate
//!   evaluation across widths, modes and branches;
//! * finished-job and applied-command counts.
//!
//! The same experiment also runs under both evaluation modes — the dense
//! full-evaluation path and the default dirty-set/event-driven path — at
//! widths 1 and 8. The incremental evaluator is an *optimization*, not a
//! semantic variant: every digest must match the dense reference bit for
//! bit.
//!
//! A third family of legs checks the what-if snapshot contract: the run
//! is stopped halfway, captured with `ClusterSnapshot`, the *original* is
//! stepped onward (so any state the branch secretly shared with it would
//! diverge), and the branch is driven to the end. Every digest of the
//! branched run — taken mid-fault-schedule, at widths 1 and 8 — must
//! match the uninterrupted reference bit for bit.
//!
//! Any divergence prints the offending run and exits non-zero, failing
//! CI. Under a minute of wall clock; see `scripts/ci.sh`.

use ppc_cluster::{ClusterSim, ClusterSpec, EvalMode};
use ppc_core::{HierarchicalManager, ManagerConfig, NodeSets, PolicyKind, PowerManager, Topology};
use ppc_faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc_simkit::{RngFactory, SimDuration, WorkerPool};
use ppc_whatif::ClusterSnapshot;
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;

const NODES: u32 = 8;
const RUN_SECS: u64 = 400;

/// Everything one run produces that must be invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunDigest {
    journal: u64,
    trace: u64,
    spans: u64,
    metrics: u64,
    rollup: u64,
    sketch: u64,
    alerts: u64,
    finished: usize,
    commands: u64,
    /// Control cycles the health plane folded (vacuity check only).
    health_cycles: u64,
}

fn digest(sim: &ClusterSim) -> RunDigest {
    let hf = sim.health_fingerprints();
    RunDigest {
        journal: sim.journal().fingerprint(),
        trace: sim.true_power().fingerprint(),
        spans: sim.span_fingerprint(),
        metrics: sim.metrics_fingerprint(),
        rollup: hf.rollup,
        sketch: hf.sketch,
        alerts: hf.alerts,
        finished: sim.finished().len(),
        commands: sim.commands_applied(),
        health_cycles: sim.health().rollup().facility().cycles,
    }
}

/// The gate's shared experiment: a tightly-provisioned mini cluster with
/// an aggressive fault schedule. Both the flat and the hierarchical legs
/// run exactly this.
fn gate_spec() -> (ClusterSpec, FaultSchedule, ManagerConfig) {
    let mut spec = ClusterSpec::mini(NODES);
    spec.provision_fraction = 0.60; // tight provision: capping engages
    let rates = FaultRates {
        crash_per_node_hour: 6.0,
        reboot_mean_secs: 45.0,
        hang_per_node_hour: 6.0,
        silence_per_node_hour: 8.0,
        partition_per_hour: 10.0,
        partition_width: 4,
        ..FaultRates::default()
    };
    let schedule = FaultSchedule::generate(
        &rates,
        NODES,
        SimDuration::from_secs(RUN_SECS),
        &RngFactory::new(spec.seed),
    );
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    (spec, schedule, config)
}

fn build(workers: usize, mode: EvalMode) -> Result<ClusterSim, String> {
    let (spec, schedule, config) = gate_spec();
    let sets = NodeSets::new(spec.node_ids(), []);
    let manager =
        PowerManager::new(config, sets).map_err(|e| format!("manager construction: {e}"))?;
    let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
    Ok(ClusterSim::new(spec)
        .with_manager(manager)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(pool)
        .with_eval_mode(mode))
}

/// The same experiment under the hierarchical control plane.
fn build_hier(workers: usize, mode: EvalMode, topology: Topology) -> Result<ClusterSim, String> {
    let (spec, schedule, config) = gate_spec();
    let hier = HierarchicalManager::new(config, topology, &BTreeSet::new(), spec.node_weights_w())
        .map_err(|e| format!("hierarchy construction: {e}"))?;
    let pool = Arc::new(WorkerPool::new(workers).with_inline_threshold(0));
    Ok(ClusterSim::new(spec)
        .with_hierarchy(hier)
        .with_faults(FaultInjection::new(schedule))
        .with_worker_pool(pool)
        .with_eval_mode(mode))
}

fn run_once_hier(workers: usize, mode: EvalMode, topology: Topology) -> Result<RunDigest, String> {
    let mut sim = build_hier(workers, mode, topology)?;
    sim.run_for(SimDuration::from_secs(RUN_SECS));
    Ok(digest(&sim))
}

fn run_once(workers: usize, mode: EvalMode) -> Result<RunDigest, String> {
    let mut sim = build(workers, mode)?;
    sim.run_for(SimDuration::from_secs(RUN_SECS));
    Ok(digest(&sim))
}

/// The branch-and-replay leg: stop the run halfway — mid-fault-schedule,
/// jobs in flight, thresholds learned — capture a snapshot, keep stepping
/// the *original* (a branch that secretly shared state with it would
/// diverge here), then drive the branch to the end and digest it.
fn run_branched(workers: usize, mode: EvalMode) -> Result<RunDigest, String> {
    let half = RUN_SECS / 2;
    let mut sim = build(workers, mode)?;
    sim.run_for(SimDuration::from_secs(half));
    let snapshot = ClusterSnapshot::capture(&sim);
    // Perturb the original past the capture point before the branch runs.
    sim.run_for(SimDuration::from_secs(30));
    let mut branch = snapshot.branch();
    branch.run_for(SimDuration::from_secs(RUN_SECS - half));
    Ok(digest(&branch))
}

fn main() -> ExitCode {
    // (label, width, mode, branched): width 1 twice proves same-seed
    // repeatability, width 8 proves pool-width invariance, the dense
    // (Full) runs prove the dirty-set/event-driven evaluator changes
    // nothing any fingerprint can see, and the branched legs prove a
    // what-if snapshot forked halfway replays the back half bit for bit
    // — at both widths.
    let runs = [
        ("incr width 1", 1usize, EvalMode::Incremental, false),
        ("incr width 1 rep", 1, EvalMode::Incremental, false),
        ("incr width 8", 8, EvalMode::Incremental, false),
        ("dense width 1", 1, EvalMode::Full, false),
        ("dense width 8", 8, EvalMode::Full, false),
        ("branch width 1", 1, EvalMode::Incremental, true),
        ("branch width 8", 8, EvalMode::Incremental, true),
    ];
    let mut baseline: Option<RunDigest> = None;
    let mut failed = false;
    for (label, workers, mode, branched) in runs {
        let run = if branched { run_branched } else { run_once };
        let digest = match run(workers, mode) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("determinism gate: {label}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "determinism gate: {label:16} journal={:016x} trace={:016x} spans={:016x} \
             metrics={:016x} rollup={:016x} sketch={:016x} alerts={:016x} finished={} commands={}",
            digest.journal,
            digest.trace,
            digest.spans,
            digest.metrics,
            digest.rollup,
            digest.sketch,
            digest.alerts,
            digest.finished,
            digest.commands
        );
        if digest.spans == ppc_obs::SpanRecorder::new(1).fingerprint() {
            eprintln!("determinism gate: span fingerprint is the empty-recorder hash — no spans recorded, gate would be vacuous");
            failed = true;
        }
        match &baseline {
            None => {
                if digest.commands == 0 {
                    eprintln!("determinism gate: no commands applied — gate would be vacuous");
                    failed = true;
                }
                if digest.health_cycles == 0 {
                    eprintln!("determinism gate: health plane observed no cycles — health fingerprints would be vacuous");
                    failed = true;
                }
                baseline = Some(digest);
            }
            Some(b) if *b != digest => {
                eprintln!("determinism gate: {label} diverged from the first run");
                failed = true;
            }
            Some(_) => {}
        }
    }
    // Hierarchical legs. A single-rack hierarchy *is* the flat
    // architecture — pure delegation passthrough — so its digests must
    // match the flat baseline bit for bit at both widths. A 3-level
    // topology (2 rows × 2 racks of 2 nodes) exercises real delegation,
    // sharded sub-manager evaluation and rollup; it forms its own digest
    // family, pinned across widths 1 and 8 plus a same-width repeat.
    let single_rack = match Topology::single_rack(NODES) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("determinism gate: topology: {e}");
            return ExitCode::FAILURE;
        }
    };
    let three_level = match Topology::new(NODES, 2, 2) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("determinism gate: topology: {e}");
            return ExitCode::FAILURE;
        }
    };
    let hier_runs = [
        ("hier 1rack width 1", 1usize, single_rack, false),
        ("hier 1rack width 8", 8, single_rack, false),
        ("hier 3lvl width 1", 1, three_level, true),
        ("hier 3lvl width 1 rep", 1, three_level, true),
        ("hier 3lvl width 8", 8, three_level, true),
    ];
    let mut hier_baseline: Option<RunDigest> = None;
    for (label, workers, topology, own_family) in hier_runs {
        let digest = match run_once_hier(workers, EvalMode::Incremental, topology) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("determinism gate: {label}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "determinism gate: {label:16} journal={:016x} trace={:016x} spans={:016x} \
             metrics={:016x} rollup={:016x} sketch={:016x} alerts={:016x} finished={} commands={}",
            digest.journal,
            digest.trace,
            digest.spans,
            digest.metrics,
            digest.rollup,
            digest.sketch,
            digest.alerts,
            digest.finished,
            digest.commands
        );
        if !own_family {
            // Flat-equivalence family: compare against the flat baseline.
            if baseline.as_ref() != Some(&digest) {
                eprintln!(
                    "determinism gate: {label} diverged from the flat manager — \
                     single-rack hierarchy is not a passthrough"
                );
                failed = true;
            }
            continue;
        }
        match &hier_baseline {
            None => {
                if digest.commands == 0 {
                    eprintln!("determinism gate: hierarchical run applied no commands — gate would be vacuous");
                    failed = true;
                }
                if digest.health_cycles == 0 {
                    eprintln!("determinism gate: hierarchical health plane observed no cycles — health fingerprints would be vacuous");
                    failed = true;
                }
                hier_baseline = Some(digest);
            }
            Some(b) if *b != digest => {
                eprintln!("determinism gate: {label} diverged from the first hierarchical run");
                failed = true;
            }
            Some(_) => {}
        }
    }
    if failed {
        eprintln!("determinism gate: FAILED — seeded replay is not bit-identical");
        ExitCode::FAILURE
    } else {
        println!(
            "determinism gate: ok — journal, trace, span, metrics and health hashes identical \
             across runs, pool widths, evaluation modes and control-plane architectures"
        );
        ExitCode::SUCCESS
    }
}
