//! Figure 6 — power capping effect at different sizes of A_candidate.
//!
//! Sweeps |A_candidate| ∈ {0, 8, 16, 32, 48, 64, 96, 128} for the MPC and
//! HRI policies on the 128-node Tianhe-1A variant and reports `P_max` and
//! `ΔP×T` normalized against the size-0 (unmanaged) run, as the paper
//! plots them. Expected shape: both metrics improve monotonically with
//! candidate count, with strongly diminishing returns past ~48 nodes
//! (first-fit packing concentrates the running jobs on low-index nodes,
//! which enter the candidate set first).

use ppc_bench::{paper_config, run_labeled};
use ppc_cluster::output::{render_csv, render_table};
use ppc_core::PolicyKind;

fn main() {
    let sizes = [0usize, 8, 16, 32, 48, 64, 96, 128];
    let baseline = run_labeled(&paper_config(None, None));

    println!("Figure 6 — power capping effect vs |A_candidate|");
    println!(
        "(normalized against the unmanaged run: P_max {:.1} kW, ΔP×T {:.5})\n",
        baseline.metrics.p_max_w / 1e3,
        baseline.metrics.overspend
    );

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for policy in [PolicyKind::Mpc, PolicyKind::Hri] {
        for &size in &sizes {
            let (label, norm_pmax, norm_over) = if size == 0 {
                (format!("{policy}/0"), 1.0, 1.0)
            } else {
                let out = run_labeled(&paper_config(Some(policy), Some(size)));
                let n = out.metrics.normalize_against(&baseline.metrics);
                (out.label.clone(), n.p_max, n.overspend)
            };
            rows.push(vec![
                label.clone(),
                policy.to_string(),
                size.to_string(),
                format!("{norm_pmax:.4}"),
                format!("{norm_over:.4}"),
            ]);
            csv_rows.push(vec![
                policy.to_string(),
                size.to_string(),
                format!("{norm_pmax:.6}"),
                format!("{norm_over:.6}"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "run",
                "policy",
                "|A_candidate|",
                "P_max (norm.)",
                "ΔP×T (norm.)"
            ],
            &rows
        )
    );
    println!(
        "CSV:\n{}",
        render_csv(
            &["policy", "size", "pmax_norm", "overspend_norm"],
            &csv_rows
        )
    );
}
