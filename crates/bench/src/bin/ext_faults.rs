//! Extension — capping robustness under fault injection.
//!
//! The paper evaluates capping on a healthy machine; at the scale it
//! targets (§I: thousands of nodes) the machine is never healthy. This
//! binary sweeps deterministic fault schedules (node crashes, frozen DVFS
//! actuators, telemetry silences, aggregation-subtree partitions) across
//! the paper's MPC and HRI policies and reports, normalized against each
//! policy's zero-fault run:
//!
//! * delivered availability, MTTR, and jobs requeued/failed;
//! * the capping-safety figure — the fraction of control cycles spent in
//!   Red must not grow just because telemetry went stale;
//! * the fraction of cycles the manager ran in its conservative
//!   degraded-telemetry mode;
//! * `Performance(cap)` and `P_max` relative to the healthy run.
//!
//! Writes `EXT_faults.json`. `--smoke` runs a minutes-long small-cluster
//! variant with aggressive rates (the CI gate).

use ppc_bench::{default_measurement, default_training};
use ppc_cluster::experiment::{run_experiment, ExperimentConfig, ExperimentOutcome};
use ppc_cluster::output::render_table;
use ppc_cluster::ClusterSpec;
use ppc_core::PolicyKind;
use ppc_faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc_simkit::{RngFactory, SimDuration};

/// The fault levels swept, healthy first (the normalization baseline).
fn sweep_points(smoke: bool) -> Vec<(String, FaultRates)> {
    if smoke {
        // Aggressive rates so a minutes-long run still exercises every
        // fault class and the conservative fallback.
        return vec![
            ("healthy".into(), FaultRates::default()),
            (
                "crashes".into(),
                FaultRates {
                    reboot_mean_secs: 60.0,
                    ..FaultRates::crashes(4.0)
                },
            ),
            (
                "full mix".into(),
                FaultRates {
                    crash_per_node_hour: 4.0,
                    reboot_mean_secs: 60.0,
                    hang_per_node_hour: 6.0,
                    hang_mean_secs: 90.0,
                    silence_per_node_hour: 8.0,
                    silence_mean_secs: 60.0,
                    partition_per_hour: 12.0,
                    partition_mean_secs: 90.0,
                    partition_width: 4,
                },
            ),
        ];
    }
    vec![
        ("healthy".into(), FaultRates::default()),
        ("crash 1%/h".into(), FaultRates::crashes(0.01)),
        ("crash 5%/h".into(), FaultRates::crashes(0.05)),
        (
            "full mix".into(),
            FaultRates {
                crash_per_node_hour: 0.05,
                hang_per_node_hour: 0.2,
                hang_mean_secs: 120.0,
                silence_per_node_hour: 0.5,
                silence_mean_secs: 60.0,
                partition_per_hour: 2.0,
                partition_mean_secs: 60.0,
                ..FaultRates::default()
            },
        ),
    ]
}

fn base_config(smoke: bool, policy: PolicyKind) -> ExperimentConfig {
    if smoke {
        let mut cfg = ExperimentConfig::quick(Some(policy), 8);
        cfg.training = SimDuration::from_mins(2);
        cfg.measurement = SimDuration::from_mins(10);
        cfg
    } else {
        let mut cfg = ExperimentConfig::paper(Some(policy));
        cfg.spec = ClusterSpec::tianhe_1a_variant();
        cfg.training = default_training();
        cfg.measurement = default_measurement();
        cfg
    }
}

fn run_point(
    smoke: bool,
    policy: PolicyKind,
    label: &str,
    rates: &FaultRates,
) -> ExperimentOutcome {
    let mut cfg = base_config(smoke, policy);
    let faulty = *rates != FaultRates::default();
    if faulty {
        let horizon = cfg.training + cfg.measurement;
        let schedule = FaultSchedule::generate(
            rates,
            cfg.spec.total_nodes(),
            horizon,
            &RngFactory::new(cfg.spec.seed),
        );
        eprintln!(
            "running {policy} / {label} ({} fault events) …",
            schedule.len()
        );
        cfg.faults = Some(FaultInjection::new(schedule));
    } else {
        eprintln!("running {policy} / {label} …");
    }
    run_experiment(&cfg)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "Extension — capping robustness under fault injection{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for policy in [PolicyKind::Mpc, PolicyKind::Hri] {
        let mut healthy: Option<ExperimentOutcome> = None;
        for (label, rates) in sweep_points(smoke) {
            let out = run_point(smoke, policy, &label, &rates);
            let base = healthy.as_ref().unwrap_or(&out);
            let perf_ratio = out.metrics.performance / base.metrics.performance;
            let pmax_ratio = out.metrics.p_max_w / base.metrics.p_max_w;
            let a = out.availability.unwrap_or_default();
            let availability = if out.availability.is_some() {
                a.availability
            } else {
                1.0
            };
            rows.push(vec![
                policy.to_string(),
                label.clone(),
                format!("{:.4}", availability),
                format!("{:.0}s", a.mttr_secs),
                format!("{}/{}", a.jobs_requeued, a.jobs_failed),
                format!("{}", a.commands_failed),
                format!("{:.1}%", a.conservative_fraction * 100.0),
                format!("{:.2}%", a.red_fraction * 100.0),
                format!("{perf_ratio:.4}"),
                format!("{pmax_ratio:.4}"),
            ]);
            entries.push(serde_json::json!({
                "policy": policy.to_string(),
                "faults": label,
                "availability": availability,
                "mttr_secs": a.mttr_secs,
                "node_hours_lost": a.node_hours_lost,
                "crashes": a.crashes,
                "hangs": a.hangs,
                "silences": a.silences,
                "jobs_requeued": a.jobs_requeued,
                "jobs_failed": a.jobs_failed,
                "commands_failed": a.commands_failed,
                "conservative_fraction": a.conservative_fraction,
                "red_fraction": a.red_fraction,
                "performance_vs_healthy": perf_ratio,
                "p_max_vs_healthy": pmax_ratio,
                "red_cycles_measured": out.red_cycles_measured,
            }));
            if smoke && label != "healthy" {
                // The CI gate: faults must be visible, and stale telemetry
                // must never push the system into Red (the capping-safety-
                // under-faults criterion). A tiny cluster with compressed
                // training sees the occasional single-cycle workload-spike
                // Red with or without faults, so the bound is relative to
                // the healthy run, not absolute zero.
                assert!(availability < 1.0, "injected faults must cost capacity");
                assert!(
                    out.red_cycles_measured <= base.red_cycles_measured + 3,
                    "faults must not drive the system into Red: {} red cycles vs {} healthy",
                    out.red_cycles_measured,
                    base.red_cycles_measured
                );
            }
            if healthy.is_none() {
                healthy = Some(out);
            }
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "policy",
                "faults",
                "availability",
                "MTTR",
                "requeued/failed",
                "cmd fail",
                "conservative",
                "red",
                "Perf vs healthy",
                "P_max vs healthy",
            ],
            &rows
        )
    );

    let report = serde_json::json!({
        "mode": if smoke { "smoke" } else { "full" },
        "sweep": entries,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("EXT_faults.json", format!("{rendered}\n")).expect("write EXT_faults.json");
    println!("wrote EXT_faults.json");
}
