//! Figure 4 — the accumulative effect of overspending (ΔP×T).
//!
//! Regenerates the figure's construction on a synthetic power curve: a
//! trace with two excursions above the provision threshold, the overspent
//! (dark-grey) area, the total energy area, and the ratio between them.
//! Also prints the metric at several thresholds to show its monotonicity.

use ppc_cluster::output::render_table;
use ppc_metrics::overspend::{overspend_energy_j, overspend_ratio, time_above_fraction};
use ppc_simkit::{SimTime, TimeSeries};

fn main() {
    // A stylized P(t): baseline load with two spikes of different height
    // and duration, mirroring the shape of the paper's Figure 4.
    let mut trace = TimeSeries::new();
    let profile: &[(u64, f64)] = &[
        (0, 800.0),
        (60, 850.0),
        (120, 1_150.0), // first excursion
        (180, 1_250.0),
        (240, 900.0),
        (300, 820.0),
        (420, 1_050.0), // second, milder excursion
        (480, 1_080.0),
        (540, 860.0),
        (600, 800.0),
    ];
    for &(t, p) in profile {
        trace.push(SimTime::from_secs(t), p);
    }
    let p_th = 1_000.0;

    println!("Figure 4 — accumulative effect of overspending (ΔP×T)\n");
    println!("threshold P_th = {p_th} W, trace span = {} s\n", 600);
    let total_j = trace.integrate(ppc_simkit::series::Interp::Step);
    let over_j = overspend_energy_j(&trace, p_th);
    let rows = vec![
        vec![
            "total energy (grey area)".to_string(),
            format!("{total_j:.0} J"),
        ],
        vec![
            "overspent energy (dark grey)".to_string(),
            format!("{over_j:.0} J"),
        ],
        vec![
            "ΔP×T".to_string(),
            format!("{:.5}", overspend_ratio(&trace, p_th)),
        ],
        vec![
            "time above P_th".to_string(),
            format!("{:.1}%", time_above_fraction(&trace, p_th) * 100.0),
        ],
    ];
    println!("{}", render_table(&["quantity", "value"], &rows));

    println!("ΔP×T vs threshold (monotone non-increasing):\n");
    let rows: Vec<Vec<String>> = [800.0, 900.0, 1_000.0, 1_100.0, 1_200.0, 1_300.0]
        .iter()
        .map(|&th| {
            vec![
                format!("{th:.0} W"),
                format!("{:.5}", overspend_ratio(&trace, th)),
            ]
        })
        .collect();
    println!("{}", render_table(&["P_th", "ΔP×T"], &rows));
}
