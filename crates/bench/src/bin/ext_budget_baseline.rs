//! Extension — the paper's architecture vs the prior art.
//!
//! Related work (paper §I.B) caps clusters budget-first: divide the
//! budget across *all* nodes proportionally every cycle (Femal,
//! Ranganathan, Wang). The paper's architecture instead monitors a
//! candidate subset and throttles job-aware target sets. This binary runs
//! both on the identical workload — with the *same* thresholds, so only
//! the control architecture differs — and compares:
//!
//! * performance / CPLJ (what job-awareness buys);
//! * P_max and ΔP×T (is the cap equally safe?);
//! * monitored-node count and per-cycle management cost (what the
//!   candidate subset saves).

use ppc_bench::{default_measurement, default_training, paper_config, run_labeled};
use ppc_cluster::output::render_table;
use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{PolicyKind, ProportionalBudgetController, Thresholds};
use ppc_metrics::RunMetrics;
use ppc_telemetry::cost::ManagementCostModel;

fn main() {
    // The paper's architecture (MPC) and the unmanaged baseline, via the
    // standard experiment runner.
    let uncapped = run_labeled(&paper_config(None, None));
    let mpc = run_labeled(&paper_config(Some(PolicyKind::Mpc), None));
    // The architecture's cost lever: a 48-node candidate subset retains
    // most of the effect (Figure 6) at a quarter of the monitoring bill.
    let mpc48 = run_labeled(&paper_config(Some(PolicyKind::Mpc), Some(48)));

    // The budget baseline gets the very thresholds MPC learned, so the two
    // architectures protect the same envelope.
    let (pl, ph) = mpc.thresholds_w;
    let thresholds = Thresholds::new(pl, ph).expect("learned thresholds are valid");
    eprintln!("running proportional-budget baseline …");
    let spec = ClusterSpec::tianhe_1a_variant();
    let provision_w = spec.provision_w();
    let mut sim =
        ClusterSim::new(spec).with_budget_controller(ProportionalBudgetController::new(thresholds));
    sim.run_for(default_training());
    let t0 = sim.now();
    let finished_at_t0 = sim.finished().len();
    sim.run_for(default_measurement());
    let trace = sim.true_power().since(t0);
    let records = sim.finished()[finished_at_t0..].to_vec();
    let budget_metrics = RunMetrics::compute("BUDGET", &trace, &records, provision_w, 0.01);
    let budget_stats = sim.budget_controller().unwrap().stats();

    println!("Extension — architecture comparison on identical thresholds\n");
    let cost_model = ManagementCostModel::tianhe_1a();
    let mut rows = Vec::new();
    for (m, monitored) in [
        (&uncapped.metrics, 0usize),
        (&mpc.metrics, mpc.candidate_count),
        (&mpc48.metrics, mpc48.candidate_count),
        (&budget_metrics, 128usize),
    ] {
        rows.push(vec![
            m.label.clone(),
            format!("{:.4}", m.performance),
            format!("{:.1}%", m.cplj_fraction * 100.0),
            format!("{:.2}", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            monitored.to_string(),
            format!("{:.1}%", cost_model.utilization(monitored) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "architecture",
                "Performance",
                "CPLJ %",
                "P_max kW",
                "ΔP×T",
                "monitored nodes",
                "mgmt util (modeled)",
            ],
            &rows
        )
    );
    println!(
        "budget controller: {} of {} cycles active, {} commands issued",
        budget_stats.active_cycles, budget_stats.cycles, budget_stats.commands_issued
    );
    println!(
        "\nReading: the budget baseline shaves every node a little (CPLJ drops)\n\
         and its instant full-restoration lets spikes pass through whole —\n\
         P_max stays near uncapped. Algorithm 1's asymmetric control (one\n\
         level down on a job-aware target set, gradual T_g-gated recovery)\n\
         is what actually clips the peak. And MPC/48 shows the candidate\n\
         subset retaining most of the effect at a quarter of the monitoring\n\
         cost — the architecture's two claims, quantified."
    );
}
