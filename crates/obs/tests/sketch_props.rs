//! Property tests for the quantile sketch's merge laws.
//!
//! The fan-out contract (per-shard sketches merged post-join equal
//! serial observation bit-for-bit, at any pool width) reduces to merge
//! forming a commutative monoid over sketches. Each law is asserted on
//! the full state (`PartialEq`) *and* the FNV-1a fingerprint, because
//! the fingerprint is what the determinism gate actually pins.

use ppc_obs::QuantileSketch;
use proptest::prelude::*;

/// Arbitrary observation values: positive powers/latencies across
/// orders of magnitude, plus the low-bucket edge cases (zero,
/// negatives). A selector digit mixes the three populations at an
/// 8:1:1 ratio.
fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0u8..10, 1e-3..1e9f64).prop_map(|(sel, x)| match sel {
            8 => 0.0,
            9 => -(x.min(100.0)) - 0.5,
            _ => x,
        }),
        0..200,
    )
}

fn sketch_of(xs: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    s.observe_slice(xs);
    s
}

proptest! {
    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        // (a ∪ b) ∪ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ∪ (b ∪ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.fingerprint(), right.fingerprint());
    }

    #[test]
    fn empty_is_identity(a in values()) {
        let sa = sketch_of(&a);
        // a ∪ ∅ = a
        let mut padded = sa.clone();
        padded.merge(&QuantileSketch::new());
        prop_assert_eq!(&padded, &sa);
        prop_assert_eq!(padded.fingerprint(), sa.fingerprint());
        // ∅ ∪ a = a
        let mut seeded = QuantileSketch::new();
        seeded.merge(&sa);
        prop_assert_eq!(&seeded, &sa);
    }

    #[test]
    fn sharded_merge_equals_serial(a in values(), width in 1usize..9) {
        let serial = sketch_of(&a);
        let chunk = a.len().div_ceil(width).max(1);
        let mut merged = QuantileSketch::new();
        for shard in a.chunks(chunk) {
            merged.merge(&sketch_of(shard));
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.fingerprint(), serial.fingerprint());
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(a in values()) {
        let s = sketch_of(&a);
        if let (Some(p50), Some(p99)) = (s.quantile(0.5), s.quantile(0.99)) {
            prop_assert!(p50 <= p99);
            if let Some(max) = s.max() {
                // Midpoint answers can only overshoot by the error bound.
                prop_assert!(p99 <= max.max(0.0) * (1.0 + 2.0 * ppc_obs::RELATIVE_ERROR_BOUND));
            }
        }
    }
}
