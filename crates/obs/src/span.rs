//! Deterministic span recorder keyed by simulation time.
//!
//! A [`SpanRecorder`] captures the per-cycle control-loop structure as a
//! tree of named spans: the cluster simulation opens a root span per
//! control cycle and each stage (fault sweep, sensing, classification,
//! selection, actuation, …) opens a child around its work. Spans carry
//! typed [`AttrValue`] attributes (state color, deficit watts, |A_target|,
//! retry counts) and are timestamped with [`SimTime`] only — never the
//! wall clock — so the recorded tree is bit-identical across runs and
//! worker-pool widths. CI's determinism gate compares
//! [`SpanRecorder::fingerprint`] across widths 1 and 8.
//!
//! Hot-path discipline mirrors the journal: completed spans live in a
//! bounded ring (evictions counted, never silent), attribute vectors are
//! recycled through a freelist so steady-state recording allocates
//! nothing, and the fingerprint is folded incrementally at span close so
//! it covers *every* span ever closed, not just the retained window.

use ppc_simkit::hash::Fnv1a;
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a recorded span, unique within one recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// A typed span attribute value. `Copy`, so attaching attributes on the
/// hot path moves no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AttrValue {
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (watts, fractions). Hashed by bit pattern.
    F64(f64),
    /// Static string (state colors, policy names).
    Str(&'static str),
}

impl AttrValue {
    /// Folds the value as two words: a type tag and the payload bits
    /// (strings enter via their interned FNV digest).
    fn absorb(&self, h: &mut Fnv1a, interned: &mut Vec<InternedStr>) {
        match *self {
            AttrValue::U64(v) => {
                h.write_word(0);
                h.write_word(v);
            }
            AttrValue::I64(v) => {
                h.write_word(1);
                h.write_word(v as u64);
            }
            AttrValue::F64(v) => {
                h.write_word(2);
                h.write_word(v.to_bits());
            }
            AttrValue::Str(s) => {
                h.write_word(3);
                h.write_word(static_digest(interned, s));
            }
        }
    }
}

/// One memoized `&'static str` digest: (address, length, FNV-1a digest).
/// Keyed by address+length so the lookup never re-reads the string bytes;
/// a duplicated static (distinct address, same bytes) merely recomputes
/// the same digest, so fingerprints stay address-independent.
type InternedStr = (usize, u32, u64);

/// Digest of a static string, memoized in `interned`. Span/attr name sets
/// are tiny (a dozen distinct strings), so a linear scan beats any map.
fn static_digest(interned: &mut Vec<InternedStr>, s: &'static str) -> u64 {
    let key = (s.as_ptr() as usize, s.len() as u32);
    for &(p, l, d) in interned.iter() {
        if (p, l) == key {
            return d;
        }
    }
    let d = Fnv1a::digest_of(s.as_bytes());
    interned.push((key.0, key.1, d));
    d
}

/// One completed span. (Serialize-only: the static name cannot be
/// deserialized into a `'static` borrow — see [`SpanDump`] for the owned
/// round-trippable form.)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Recorder-unique id (monotonic in close order of open).
    pub id: SpanId,
    /// Enclosing span at open time, if any.
    pub parent: Option<SpanId>,
    /// Static span name (e.g. `"cycle"`, `"select"`).
    pub name: &'static str,
    /// Simulation time the span opened.
    pub start: SimTime,
    /// Simulation time the span closed.
    pub end: SimTime,
    /// Intra-tick sequence number at open — orders same-millisecond
    /// events and synthesizes microsecond offsets for Chrome traces.
    pub start_seq: u32,
    /// Intra-tick sequence number at close.
    pub end_seq: u32,
    /// Typed attributes in attach order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// An open span awaiting close.
#[derive(Debug, Clone)]
struct OpenSpan {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: SimTime,
    start_seq: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Bounded, deterministic span recorder. See the module docs.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    enabled: bool,
    capacity: usize,
    done: VecDeque<SpanRecord>,
    stack: Vec<OpenSpan>,
    freelist: Vec<Vec<(&'static str, AttrValue)>>,
    interned: Vec<InternedStr>,
    next_id: u64,
    closed: u64,
    dropped: u64,
    hash: Fnv1a,
    last_at: SimTime,
    seq: u32,
}

impl SpanRecorder {
    /// A recorder retaining at most `capacity` completed spans.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span recorder capacity must be positive");
        SpanRecorder {
            enabled: true,
            capacity,
            done: VecDeque::with_capacity(capacity.min(1024)),
            stack: Vec::with_capacity(8),
            freelist: Vec::new(),
            interned: Vec::new(),
            next_id: 0,
            closed: 0,
            dropped: 0,
            hash: Fnv1a::new(),
            last_at: SimTime::ZERO,
            seq: 0,
        }
    }

    /// A recorder that ignores every call — lets untraced code paths call
    /// the traced API at negligible cost.
    pub fn disabled() -> Self {
        let mut r = SpanRecorder::new(1);
        r.enabled = false;
        r
    }

    /// True unless this is the [`SpanRecorder::disabled`] sink.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Next intra-tick sequence number; resets whenever sim time moves.
    fn next_seq(&mut self, at: SimTime) -> u32 {
        if at != self.last_at {
            self.last_at = at;
            self.seq = 0;
        }
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Opens a span named `name` at sim time `at`, nested under the
    /// innermost open span.
    pub fn open(&mut self, name: &'static str, at: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId(u64::MAX);
        }
        let id = SpanId(self.next_id);
        self.next_id += 1;
        let start_seq = self.next_seq(at);
        let parent = self.stack.last().map(|s| s.id);
        let attrs = self.freelist.pop().unwrap_or_default();
        self.stack.push(OpenSpan {
            id,
            parent,
            name,
            start: at,
            start_seq,
            attrs,
        });
        id
    }

    /// Attaches an attribute to the innermost open span. No-op when
    /// disabled or when no span is open.
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        if let Some(top) = self.stack.last_mut() {
            top.attrs.push((key, value));
        }
    }

    /// Closes the innermost open span at sim time `at`. No-op when
    /// disabled or when no span is open (tolerated so `disabled()` sinks
    /// need no branching at call sites).
    pub fn close(&mut self, at: SimTime) {
        let Some(open) = self.stack.pop() else {
            return;
        };
        let end_seq = self.next_seq(at);
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start: open.start,
            end: at,
            start_seq: open.start_seq,
            end_seq,
            attrs: open.attrs,
        };
        // Fold the span into the running fingerprint now, so the hash
        // covers every closed span regardless of later ring eviction.
        // Word-granularity absorbs (one multiply per fixed-width field,
        // names via interned digests) keep this a few nanoseconds: the
        // fold runs ~10 times per control cycle on the managed hot path.
        let h = &mut self.hash;
        h.write_word(record.id.0);
        h.write_word(record.parent.map_or(u64::MAX, |p| p.0));
        h.write_word(static_digest(&mut self.interned, record.name));
        h.write_word(record.start.as_millis());
        h.write_word(record.end.as_millis());
        h.write_word(u64::from(record.start_seq) << 32 | u64::from(record.end_seq));
        h.write_word(record.attrs.len() as u64);
        for (key, value) in &record.attrs {
            h.write_word(static_digest(&mut self.interned, key));
            value.absorb(h, &mut self.interned);
        }
        self.closed += 1;
        if self.done.len() == self.capacity {
            if let Some(mut evicted) = self.done.pop_front() {
                // Recycle the attribute vector: steady-state recording
                // then allocates nothing per span.
                evicted.attrs.clear();
                self.freelist.push(std::mem::take(&mut evicted.attrs));
            }
            self.dropped += 1;
        }
        self.done.push_back(record);
    }

    /// Number of retained completed spans.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True if no completed spans are retained.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Total spans ever closed (retained or evicted).
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Completed spans evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Depth of the currently-open span stack.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Iterates retained completed spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.done.iter()
    }

    /// The most recent `n` completed spans, oldest of those first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &SpanRecord> {
        let skip = self.done.len().saturating_sub(n);
        self.done.iter().skip(skip)
    }

    /// Order-sensitive FNV-1a hash over every span ever closed (id,
    /// parent, name, times, sequence numbers, attributes) plus the closed
    /// count. The fold absorbs 64-bit words — fixed-width fields directly,
    /// strings via their own FNV-1a digest — so the value is stable across
    /// runs, widths and processes but not comparable with a byte-serial
    /// fold. Ring capacity does not affect the value (the drop count is
    /// derivable from the closed count and is deliberately excluded); any
    /// nondeterminism in stage order, timing or attributes does.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.hash.clone();
        h.write_word(self.closed);
        h.finish()
    }

    /// Owned copies of the last `n` retained spans (for flight-recorder
    /// snapshots and serialized reports).
    pub fn dump_tail(&self, n: usize) -> Vec<SpanDump> {
        self.tail(n).map(SpanDump::from).collect()
    }
}

/// Owned, round-trippable form of a [`SpanRecord`] for serialized
/// reports (flight-recorder snapshots, `ExperimentOutcome`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanDump {
    /// Recorder-unique id.
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Open time, sim milliseconds.
    pub start_ms: u64,
    /// Close time, sim milliseconds.
    pub end_ms: u64,
    /// Intra-tick sequence at open.
    pub start_seq: u32,
    /// Intra-tick sequence at close.
    pub end_seq: u32,
    /// Attributes in attach order.
    pub attrs: Vec<AttrDump>,
}

/// Owned attribute for [`SpanDump`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrDump {
    /// Attribute key.
    pub key: String,
    /// Value rendered by type.
    pub value: AttrDumpValue,
}

/// Owned attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrDumpValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
}

impl From<&SpanRecord> for SpanDump {
    fn from(r: &SpanRecord) -> Self {
        SpanDump {
            id: r.id.0,
            parent: r.parent.map(|p| p.0),
            name: r.name.to_string(),
            start_ms: r.start.as_millis(),
            end_ms: r.end.as_millis(),
            start_seq: r.start_seq,
            end_seq: r.end_seq,
            attrs: r
                .attrs
                .iter()
                .map(|(k, v)| AttrDump {
                    key: (*k).to_string(),
                    value: match *v {
                        AttrValue::U64(x) => AttrDumpValue::U64(x),
                        AttrValue::I64(x) => AttrDumpValue::I64(x),
                        AttrValue::F64(x) => AttrDumpValue::F64(x),
                        AttrValue::Str(s) => AttrDumpValue::Str(s.to_string()),
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn records_a_nested_tree() {
        let mut r = SpanRecorder::new(16);
        let root = r.open("cycle", t(1));
        let child = r.open("select", t(1));
        r.attr("targets", AttrValue::U64(3));
        r.close(t(1));
        r.close(t(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.closed(), 2);
        assert_eq!(r.open_depth(), 0);
        let spans: Vec<&SpanRecord> = r.iter().collect();
        // Close order: child first.
        assert_eq!(spans[0].id, child);
        assert_eq!(spans[0].parent, Some(root));
        assert_eq!(spans[0].name, "select");
        assert_eq!(spans[0].attrs, vec![("targets", AttrValue::U64(3))]);
        assert_eq!(spans[1].id, root);
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].end, t(2));
    }

    #[test]
    fn sequence_numbers_order_same_tick_events() {
        let mut r = SpanRecorder::new(16);
        r.open("a", t(5));
        r.open("b", t(5));
        r.close(t(5));
        r.close(t(5));
        let spans: Vec<&SpanRecord> = r.iter().collect();
        // a opens at seq 0, b at 1, b closes at 2, a at 3.
        assert_eq!((spans[0].start_seq, spans[0].end_seq), (1, 2));
        assert_eq!((spans[1].start_seq, spans[1].end_seq), (0, 3));
        // New tick resets the counter.
        r.open("c", t(6));
        r.close(t(6));
        let last = r.iter().last().unwrap();
        assert_eq!((last.start_seq, last.end_seq), (0, 1));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.open("s", t(i));
            r.close(t(i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.closed(), 5);
        let names: Vec<u64> = r.iter().map(|s| s.start.as_millis() / 1000).collect();
        assert_eq!(names, vec![3, 4]);
    }

    #[test]
    fn fingerprint_is_capacity_independent() {
        let fill = |cap: usize| {
            let mut r = SpanRecorder::new(cap);
            for i in 0..10u64 {
                r.open("cycle", t(i));
                r.attr("w", AttrValue::F64(i as f64));
                r.close(t(i));
            }
            r.fingerprint()
        };
        assert_eq!(
            fill(2),
            fill(1000),
            "hash must cover evicted spans identically"
        );
    }

    #[test]
    fn fingerprint_sees_attrs_and_order() {
        let run = |val: u64, name: &'static str| {
            let mut r = SpanRecorder::new(8);
            r.open(name, t(1));
            r.attr("k", AttrValue::U64(val));
            r.close(t(1));
            r.fingerprint()
        };
        assert_eq!(run(1, "a"), run(1, "a"));
        assert_ne!(run(1, "a"), run(2, "a"), "attr value must matter");
        assert_ne!(run(1, "a"), run(1, "b"), "span name must matter");
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let mut r = SpanRecorder::disabled();
        assert!(!r.is_enabled());
        let id = r.open("x", t(1));
        assert_eq!(id, SpanId(u64::MAX));
        r.attr("k", AttrValue::U64(1));
        r.close(t(1));
        assert!(r.is_empty());
        assert_eq!(r.closed(), 0);
    }

    #[test]
    fn unbalanced_close_is_tolerated() {
        let mut r = SpanRecorder::new(4);
        r.close(t(1)); // no open span: ignored
        assert_eq!(r.closed(), 0);
    }

    #[test]
    fn freelist_recycles_attr_vectors() {
        let mut r = SpanRecorder::new(1);
        for i in 0..4u64 {
            r.open("s", t(i));
            r.attr("k", AttrValue::U64(i));
            r.close(t(i));
        }
        // Ring of 1: three evictions, so the freelist has fed vectors
        // back; behaviorally the retained span must still be correct.
        let last = r.iter().next().unwrap();
        assert_eq!(last.attrs, vec![("k", AttrValue::U64(3))]);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn dump_round_trips_owned_form() {
        let mut r = SpanRecorder::new(8);
        r.open("cycle", t(2));
        r.attr("state", AttrValue::Str("red"));
        r.attr("deficit_w", AttrValue::F64(120.5));
        r.close(t(3));
        let dump = r.dump_tail(10);
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].name, "cycle");
        assert_eq!(dump[0].start_ms, 2000);
        assert_eq!(dump[0].end_ms, 3000);
        assert_eq!(dump[0].attrs[0].key, "state");
        assert_eq!(dump[0].attrs[0].value, AttrDumpValue::Str("red".into()));
        let json = serde_json::to_string(&dump[0]).unwrap();
        let back: SpanDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump[0]);
    }
}
