//! Hierarchical metric rollups mirroring the facility → row → rack
//! topology.
//!
//! The control plane (DESIGN §15) delegates budget down a contiguous
//! facility/row/rack tree; this module aggregates the *health* signals
//! back up it. Each control cycle the cluster layer feeds one
//! [`CycleObservation`] — per-rack power, budget, Green/Yellow/Red state
//! and collector coverage plus the facility-level view — and the tree
//! folds it into per-zone [`ZoneStats`]: dwell counters, peak power,
//! minimum headroom, a bounded [`RingSeries`] power history and a
//! [`QuantileSketch`] of the per-cycle power distribution. Memory is
//! O(racks + rows), never O(nodes × ticks).
//!
//! `ppc-obs` sits *below* `ppc-core` in the crate graph, so the tree
//! cannot read `core::Topology` directly; the cluster layer projects the
//! topology into a [`ZoneMap`] (rack → row assignment) at construction.
//! A flat (non-hierarchical) simulation uses the single-rack map, which
//! makes the rack, row and facility zones coincide — exactly the
//! invariant the determinism gate's "single-rack hierarchy ≡ flat" leg
//! relies on.
//!
//! Every fold happens serially, in rack index order, from deterministic
//! inputs, so [`RollupTree::fingerprint`] joins the determinism gate.

use crate::sketch::QuantileSketch;
use crate::timeseries::RingSeries;
use ppc_simkit::hash::Fnv1a;
use serde::{Deserialize, Serialize};

/// Retained power samples per zone (before downsampling kicks in).
const SERIES_CAP: usize = 128;

/// Aggregated Green/Yellow/Red severity of a zone, ordered by urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ZoneState {
    /// Under the low threshold: capacity to spare.
    Green,
    /// Between thresholds: steady state.
    Yellow,
    /// Over the high threshold: capping active.
    Red,
}

impl ZoneState {
    /// Dense index for dwell arrays.
    pub fn index(self) -> usize {
        match self {
            ZoneState::Green => 0,
            ZoneState::Yellow => 1,
            ZoneState::Red => 2,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            ZoneState::Green => "green",
            ZoneState::Yellow => "yellow",
            ZoneState::Red => "red",
        }
    }
}

/// Rack → row projection of the control topology (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    /// Row index of each rack, rack-major.
    rack_row: Vec<u32>,
    /// Number of rows (`max(rack_row) + 1`).
    rows: usize,
}

impl ZoneMap {
    /// Builds a map from per-rack row assignments. An empty input
    /// degenerates to the single-rack map so the tree always has at
    /// least one zone per level.
    pub fn new(rack_row: Vec<u32>) -> Self {
        if rack_row.is_empty() {
            return Self::single_rack();
        }
        let rows = rack_row.iter().copied().max().unwrap_or(0) as usize + 1;
        ZoneMap { rack_row, rows }
    }

    /// The trivial one-rack, one-row map used by flat simulations.
    pub fn single_rack() -> Self {
        ZoneMap {
            rack_row: vec![0],
            rows: 1,
        }
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.rack_row.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row of a rack.
    pub fn row_of(&self, rack: usize) -> usize {
        self.rack_row[rack] as usize
    }
}

/// Per-zone health aggregate. All fields are pure functions of the
/// observation sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneStats {
    /// Control cycles observed.
    pub cycles: u64,
    /// Cycles spent Green / Yellow / Red (index via [`ZoneState::index`]).
    pub dwell: [u64; 3],
    /// State at the latest cycle.
    pub last_state: ZoneState,
    /// Power at the latest cycle (W).
    pub last_power_w: f64,
    /// Budget at the latest cycle (W).
    pub last_budget_w: f64,
    /// Collector coverage at the latest cycle (0..=1).
    pub last_coverage: f64,
    /// Largest power seen (W).
    pub peak_power_w: f64,
    /// Smallest `budget - power` seen (W; may be negative on overshoot).
    pub min_headroom_w: f64,
    /// Smallest coverage seen.
    pub min_coverage: f64,
    /// Bounded per-cycle power history.
    pub series: RingSeries,
    /// Distribution of per-cycle power.
    pub power_sketch: QuantileSketch,
}

impl ZoneStats {
    fn new() -> Self {
        ZoneStats {
            cycles: 0,
            dwell: [0; 3],
            last_state: ZoneState::Green,
            last_power_w: 0.0,
            last_budget_w: 0.0,
            last_coverage: 1.0,
            peak_power_w: 0.0,
            min_headroom_w: f64::INFINITY,
            min_coverage: 1.0,
            series: RingSeries::new(SERIES_CAP),
            power_sketch: QuantileSketch::new(),
        }
    }

    fn observe(&mut self, state: ZoneState, power_w: f64, budget_w: f64, coverage: f64) {
        self.cycles += 1;
        self.dwell[state.index()] += 1;
        self.last_state = state;
        self.last_power_w = power_w;
        self.last_budget_w = budget_w;
        self.last_coverage = coverage;
        self.peak_power_w = self.peak_power_w.max(power_w);
        self.min_headroom_w = self.min_headroom_w.min(budget_w - power_w);
        self.min_coverage = self.min_coverage.min(coverage);
        self.series.push(power_w);
        self.power_sketch.observe(power_w);
    }

    /// Fraction of observed cycles at or above `state` severity.
    pub fn dwell_fraction_at_least(&self, state: ZoneState) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let bad: u64 = self.dwell[state.index()..].iter().sum();
        bad as f64 / self.cycles as f64
    }

    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.cycles);
        for &d in &self.dwell {
            h.write_u64(d);
        }
        h.write_u64(self.last_state.index() as u64);
        h.write_f64(self.last_power_w);
        h.write_f64(self.last_budget_w);
        h.write_f64(self.last_coverage);
        h.write_f64(self.peak_power_w);
        h.write_f64(self.min_headroom_w);
        h.write_f64(self.min_coverage);
        h.write_u64(self.series.fingerprint());
        h.write_u64(self.power_sketch.fingerprint());
    }
}

/// One control cycle's health inputs, rack-major. Slices must all have
/// `ZoneMap::racks` entries.
#[derive(Debug, Clone, Copy)]
pub struct CycleObservation<'a> {
    /// Per-rack Green/Yellow/Red state.
    pub rack_state: &'a [ZoneState],
    /// Per-rack power (W).
    pub rack_power_w: &'a [f64],
    /// Per-rack delegated budget (W).
    pub rack_budget_w: &'a [f64],
    /// Per-rack collector coverage (0..=1).
    pub rack_coverage: &'a [f64],
    /// Facility-level classification.
    pub facility_state: ZoneState,
    /// Facility-level (metered) power (W).
    pub facility_power_w: f64,
    /// Facility provision in force (W).
    pub facility_budget_w: f64,
    /// Facility-level collector coverage.
    pub facility_coverage: f64,
}

/// The facility → row → rack health rollup. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupTree {
    map: ZoneMap,
    racks: Vec<ZoneStats>,
    rows: Vec<ZoneStats>,
    facility: ZoneStats,
    /// Per-row accumulator reused every cycle (state, power, budget,
    /// coverage, touched) — deterministic scratch, zero allocation on
    /// the observe path.
    row_acc: Vec<(ZoneState, f64, f64, f64, bool)>,
}

const ROW_ACC_EMPTY: (ZoneState, f64, f64, f64, bool) =
    (ZoneState::Green, 0.0, 0.0, f64::INFINITY, false);

impl RollupTree {
    /// An empty tree over the given topology projection.
    pub fn new(map: ZoneMap) -> Self {
        let racks = (0..map.racks()).map(|_| ZoneStats::new()).collect();
        let rows = (0..map.rows()).map(|_| ZoneStats::new()).collect();
        let row_acc = vec![ROW_ACC_EMPTY; map.rows()];
        RollupTree {
            map,
            racks,
            rows,
            facility: ZoneStats::new(),
            row_acc,
        }
    }

    /// Folds one control cycle in: racks first (index order), then rows
    /// derived from their racks (power/budget sums, severity max,
    /// coverage min), then the facility from its own explicit view.
    pub fn observe_cycle(&mut self, obs: &CycleObservation<'_>) {
        let n = self.racks.len();
        debug_assert_eq!(obs.rack_state.len(), n);
        self.row_acc.fill(ROW_ACC_EMPTY);
        for r in 0..n {
            self.racks[r].observe(
                obs.rack_state[r],
                obs.rack_power_w[r],
                obs.rack_budget_w[r],
                obs.rack_coverage[r],
            );
            let acc = &mut self.row_acc[self.map.row_of(r)];
            acc.0 = acc.0.max(obs.rack_state[r]);
            acc.1 += obs.rack_power_w[r];
            acc.2 += obs.rack_budget_w[r];
            acc.3 = acc.3.min(obs.rack_coverage[r]);
            acc.4 = true;
        }
        for (row, &(state, power, budget, coverage, any)) in self.row_acc.iter().enumerate() {
            if any {
                self.rows[row].observe(state, power, budget, coverage);
            }
        }
        self.facility.observe(
            obs.facility_state,
            obs.facility_power_w,
            obs.facility_budget_w,
            obs.facility_coverage,
        );
    }

    /// Topology projection.
    pub fn map(&self) -> &ZoneMap {
        &self.map
    }

    /// Per-rack aggregates, rack-major.
    pub fn racks(&self) -> &[ZoneStats] {
        &self.racks
    }

    /// Per-row aggregates, row-major.
    pub fn rows(&self) -> &[ZoneStats] {
        &self.rows
    }

    /// Facility aggregate.
    pub fn facility(&self) -> &ZoneStats {
        &self.facility
    }

    /// FNV-1a over the whole tree: the zone map, then every rack, row
    /// and the facility in index order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.map.racks() as u64);
        h.write_u64(self.map.rows() as u64);
        for r in 0..self.map.racks() {
            h.write_u64(self.map.row_of(r) as u64);
        }
        for z in &self.racks {
            z.fold(&mut h);
        }
        for z in &self.rows {
            z.fold(&mut h);
        }
        self.facility.fold(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_row_map() -> ZoneMap {
        // Racks 0,1 in row 0; racks 2,3 in row 1.
        ZoneMap::new(vec![0, 0, 1, 1])
    }

    #[test]
    fn rows_aggregate_their_racks() {
        let mut tree = RollupTree::new(two_row_map());
        let states = [
            ZoneState::Green,
            ZoneState::Red,
            ZoneState::Yellow,
            ZoneState::Green,
        ];
        tree.observe_cycle(&CycleObservation {
            rack_state: &states,
            rack_power_w: &[100.0, 150.0, 120.0, 80.0],
            rack_budget_w: &[200.0, 140.0, 150.0, 150.0],
            rack_coverage: &[1.0, 0.5, 0.9, 1.0],
            facility_state: ZoneState::Red,
            facility_power_w: 450.0,
            facility_budget_w: 640.0,
            facility_coverage: 0.5,
        });
        let row0 = &tree.rows()[0];
        assert_eq!(row0.last_state, ZoneState::Red);
        assert_eq!(row0.last_power_w, 250.0);
        assert_eq!(row0.last_budget_w, 340.0);
        assert_eq!(row0.last_coverage, 0.5);
        let row1 = &tree.rows()[1];
        assert_eq!(row1.last_state, ZoneState::Yellow);
        assert_eq!(row1.last_power_w, 200.0);
        // Rack 1 overshoots its budget by 10 W → negative headroom.
        assert_eq!(tree.racks()[1].min_headroom_w, -10.0);
        assert_eq!(tree.facility().dwell, [0, 0, 1]);
        assert_eq!(tree.facility().cycles, 1);
    }

    #[test]
    fn dwell_fractions_accumulate() {
        let mut tree = RollupTree::new(ZoneMap::single_rack());
        for state in [
            ZoneState::Green,
            ZoneState::Yellow,
            ZoneState::Red,
            ZoneState::Red,
        ] {
            tree.observe_cycle(&CycleObservation {
                rack_state: &[state],
                rack_power_w: &[100.0],
                rack_budget_w: &[120.0],
                rack_coverage: &[1.0],
                facility_state: state,
                facility_power_w: 100.0,
                facility_budget_w: 120.0,
                facility_coverage: 1.0,
            });
        }
        let f = tree.facility();
        assert_eq!(f.dwell, [1, 1, 2]);
        assert_eq!(f.dwell_fraction_at_least(ZoneState::Red), 0.5);
        assert_eq!(f.dwell_fraction_at_least(ZoneState::Yellow), 0.75);
        // Single-rack map: rack, row and facility zones coincide.
        assert_eq!(tree.racks()[0], tree.rows()[0]);
        assert_eq!(tree.racks()[0], *tree.facility());
    }

    #[test]
    fn fingerprint_is_replayable_and_state_sensitive() {
        let feed = |n: usize| {
            let mut tree = RollupTree::new(two_row_map());
            for i in 0..n {
                let p = 90.0 + i as f64;
                tree.observe_cycle(&CycleObservation {
                    rack_state: &[ZoneState::Green; 4],
                    rack_power_w: &[p, p, p, p],
                    rack_budget_w: &[150.0; 4],
                    rack_coverage: &[1.0; 4],
                    facility_state: ZoneState::Green,
                    facility_power_w: 4.0 * p,
                    facility_budget_w: 600.0,
                    facility_coverage: 1.0,
                });
            }
            tree.fingerprint()
        };
        assert_eq!(feed(10), feed(10));
        assert_ne!(feed(10), feed(11));
    }
}
