//! Trace and metrics exporters.
//!
//! Three formats, all rendered from the deterministic recorder state:
//!
//! * **JSONL** — one self-describing JSON object per line (`meta`,
//!   `span`, `metric`, `flight` records) for streaming ingestion and the
//!   CI schema check ([`validate_jsonl`]).
//! * **Chrome `trace_event` JSON** — loadable in Perfetto /
//!   `chrome://tracing` for a visual per-cycle timeline. Sim time has
//!   millisecond resolution while many stage spans open and close within
//!   one tick, so timestamps are synthesized as
//!   `µs = sim_ms × 1000 + intra-tick sequence`: stages nest visibly and
//!   order exactly as recorded.
//! * **Prometheus text** — the classic `# TYPE` + sample lines dump of
//!   the metrics registry.
//!
//! Exporters never mutate recorder state and fingerprints are rendered
//! as fixed-width hex strings (JSON numbers cannot hold all `u64`s).

use crate::hub::HealthPlane;
use crate::metrics::{MetricValue, MetricsRegistry};
use crate::rollup::ZoneStats;
use crate::slo::AlertEdge;
use crate::span::{AttrValue, SpanRecord, SpanRecorder};
use serde::Value;
use std::fmt::Write as _;

/// Renders `value` as compact JSON text.
fn json_text(value: &Value) -> String {
    // ppc-lint: allow(panic-path): serializing the vendored Value type cannot fail
    serde_json::to_string(value).expect("value serialization cannot fail")
}

/// Appends `value` as one JSON line.
fn push_json_line(out: &mut String, value: &Value) {
    out.push_str(&json_text(value));
    out.push('\n');
}

fn attr_value(v: &AttrValue) -> Value {
    match *v {
        AttrValue::U64(x) => serde_json::value_of(&x),
        AttrValue::I64(x) => serde_json::value_of(&x),
        AttrValue::F64(x) => serde_json::value_of(&x),
        AttrValue::Str(s) => Value::String(s.to_string()),
    }
}

fn attrs_object(span: &SpanRecord) -> Value {
    Value::Object(
        span.attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), attr_value(v)))
            .collect(),
    )
}

/// Synthesized microsecond timestamp of a span's open edge.
fn ts_us(span: &SpanRecord) -> u64 {
    span.start.as_millis() * 1000 + u64::from(span.start_seq)
}

/// Synthesized duration in microseconds (≥ 1 so zero-width stage spans
/// stay visible in trace viewers).
fn dur_us(span: &SpanRecord) -> u64 {
    let end = span.end.as_millis() * 1000 + u64::from(span.end_seq);
    end.saturating_sub(ts_us(span)).max(1)
}

/// Renders the retained spans as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form). Open the file in Perfetto
/// (ui.perfetto.dev) or `chrome://tracing`.
pub fn chrome_trace(spans: &SpanRecorder) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 1);
    events.push(Value::Object(vec![
        ("ph".into(), Value::String("M".into())),
        ("name".into(), Value::String("process_name".into())),
        ("pid".into(), serde_json::value_of(&1u64)),
        (
            "args".into(),
            Value::Object(vec![(
                "name".into(),
                Value::String("ppc cluster simulation".into()),
            )]),
        ),
    ]));
    for span in spans.iter() {
        events.push(Value::Object(vec![
            ("name".into(), Value::String(span.name.to_string())),
            ("ph".into(), Value::String("X".into())),
            ("ts".into(), serde_json::value_of(&ts_us(span))),
            ("dur".into(), serde_json::value_of(&dur_us(span))),
            ("pid".into(), serde_json::value_of(&1u64)),
            ("tid".into(), serde_json::value_of(&1u64)),
            ("args".into(), attrs_object(span)),
        ]));
    }
    let root = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::String("ms".into())),
    ]);
    json_text(&root)
}

/// Renders recorder + registry state as a JSONL event stream: a `meta`
/// header line (fingerprints, counts), one `span` line per retained
/// span, and one `metric` line per instrument. [`validate_jsonl`] checks
/// exactly this shape.
pub fn jsonl(spans: &SpanRecorder, metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    let meta = Value::Object(vec![
        ("type".into(), Value::String("meta".into())),
        (
            "span_fingerprint".into(),
            Value::String(format!("{:016x}", spans.fingerprint())),
        ),
        (
            "metrics_fingerprint".into(),
            Value::String(format!("{:016x}", metrics.fingerprint())),
        ),
        ("spans_closed".into(), serde_json::value_of(&spans.closed())),
        (
            "spans_dropped".into(),
            serde_json::value_of(&spans.dropped()),
        ),
        (
            "spans_retained".into(),
            serde_json::value_of(&(spans.len() as u64)),
        ),
    ]);
    push_json_line(&mut out, &meta);
    for span in spans.iter() {
        let line = Value::Object(vec![
            ("type".into(), Value::String("span".into())),
            ("id".into(), serde_json::value_of(&span.id.0)),
            (
                "parent".into(),
                span.parent
                    .map_or(Value::Null, |p| serde_json::value_of(&p.0)),
            ),
            ("name".into(), Value::String(span.name.to_string())),
            (
                "start_ms".into(),
                serde_json::value_of(&span.start.as_millis()),
            ),
            ("end_ms".into(), serde_json::value_of(&span.end.as_millis())),
            ("start_seq".into(), serde_json::value_of(&span.start_seq)),
            ("end_seq".into(), serde_json::value_of(&span.end_seq)),
            ("attrs".into(), attrs_object(span)),
        ]);
        push_json_line(&mut out, &line);
    }
    for dump in metrics.dump() {
        let (kind, value) = match &dump.value {
            MetricValue::Counter(v) => ("counter", serde_json::value_of(v)),
            MetricValue::Gauge(v) => ("gauge", serde_json::value_of(v)),
            MetricValue::Histogram(h) => ("histogram", serde_json::value_of(h)),
        };
        let line = Value::Object(vec![
            ("type".into(), Value::String("metric".into())),
            ("name".into(), Value::String(dump.name)),
            ("kind".into(), Value::String(kind.into())),
            ("value".into(), value),
        ]);
        push_json_line(&mut out, &line);
    }
    out
}

/// Renders the metrics registry in the Prometheus text exposition
/// format (`# HELP` + `# TYPE` headers, `_bucket`/`_sum`/`_count`
/// histogram series with cumulative `le` labels).
pub fn prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for dump in metrics.dump() {
        let name = &dump.name;
        match &dump.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# HELP {name} deterministic ppc counter");
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# HELP {name} deterministic ppc gauge");
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# HELP {name} deterministic ppc histogram");
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// `+inf`/`nan` cannot be carried by JSON or Prometheus samples; empty
/// -run sentinels render as 0.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Renders the health plane as Prometheus text with a
/// `{rack="..",row=".."}` label dimension: per-rack and per-row rollup
/// gauges/counters plus a cumulative-bucket (`le`-labeled) histogram of
/// each rack's per-cycle power distribution, straight from its quantile
/// sketch.
pub fn prometheus_health(health: &HealthPlane) -> String {
    let mut out = String::new();
    let tree = health.rollup();
    let map = tree.map();

    let _ = writeln!(
        out,
        "# HELP ppc_rack_power_watts rack power at the latest control cycle"
    );
    let _ = writeln!(out, "# TYPE ppc_rack_power_watts gauge");
    for (r, z) in tree.racks().iter().enumerate() {
        let row = map.row_of(r);
        let _ = writeln!(
            out,
            "ppc_rack_power_watts{{rack=\"{r}\",row=\"{row}\"}} {}",
            z.last_power_w
        );
    }
    let _ = writeln!(
        out,
        "# HELP ppc_rack_budget_watts delegated rack budget at the latest cycle"
    );
    let _ = writeln!(out, "# TYPE ppc_rack_budget_watts gauge");
    for (r, z) in tree.racks().iter().enumerate() {
        let row = map.row_of(r);
        let _ = writeln!(
            out,
            "ppc_rack_budget_watts{{rack=\"{r}\",row=\"{row}\"}} {}",
            z.last_budget_w
        );
    }
    let _ = writeln!(
        out,
        "# HELP ppc_rack_red_dwell_cycles control cycles the rack spent Red"
    );
    let _ = writeln!(out, "# TYPE ppc_rack_red_dwell_cycles counter");
    for (r, z) in tree.racks().iter().enumerate() {
        let row = map.row_of(r);
        let _ = writeln!(
            out,
            "ppc_rack_red_dwell_cycles{{rack=\"{r}\",row=\"{row}\"}} {}",
            z.dwell[2]
        );
    }
    let _ = writeln!(
        out,
        "# HELP ppc_row_power_watts row power at the latest control cycle"
    );
    let _ = writeln!(out, "# TYPE ppc_row_power_watts gauge");
    for (row, z) in tree.rows().iter().enumerate() {
        let _ = writeln!(
            out,
            "ppc_row_power_watts{{row=\"{row}\"}} {}",
            z.last_power_w
        );
    }
    let _ = writeln!(
        out,
        "# HELP ppc_facility_power_watts facility power at the latest cycle"
    );
    let _ = writeln!(out, "# TYPE ppc_facility_power_watts gauge");
    let _ = writeln!(
        out,
        "ppc_facility_power_watts {}",
        tree.facility().last_power_w
    );
    let _ = writeln!(out, "# HELP ppc_alerts_open SLO alerts currently firing");
    let _ = writeln!(out, "# TYPE ppc_alerts_open gauge");
    let _ = writeln!(out, "ppc_alerts_open {}", health.slo().open_alerts());
    let _ = writeln!(
        out,
        "# HELP ppc_alert_edges_total SLO open/resolve edges emitted"
    );
    let _ = writeln!(out, "# TYPE ppc_alert_edges_total counter");
    let _ = writeln!(out, "ppc_alert_edges_total {}", health.slo().total_edges());

    // Labeled cumulative-bucket series from the per-rack power sketch.
    let _ = writeln!(
        out,
        "# HELP ppc_rack_power_dist_watts per-cycle rack power distribution"
    );
    let _ = writeln!(out, "# TYPE ppc_rack_power_dist_watts histogram");
    for (r, z) in tree.racks().iter().enumerate() {
        let row = map.row_of(r);
        let labels = format!("rack=\"{r}\",row=\"{row}\"");
        let mut cumulative = z.power_sketch.low_count();
        for (_, upper, count) in z.power_sketch.buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "ppc_rack_power_dist_watts_bucket{{{labels},le=\"{upper}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "ppc_rack_power_dist_watts_bucket{{{labels},le=\"+Inf\"}} {}",
            z.power_sketch.count()
        );
        let _ = writeln!(
            out,
            "ppc_rack_power_dist_watts_sum{{{labels}}} {}",
            z.power_sketch.sum()
        );
        let _ = writeln!(
            out,
            "ppc_rack_power_dist_watts_count{{{labels}}} {}",
            z.power_sketch.count()
        );
    }
    out
}

fn zone_line(kind: &str, index: u64, row: Option<u64>, z: &ZoneStats) -> Value {
    let mut fields = vec![
        ("type".into(), Value::String("zone".into())),
        ("zone".into(), Value::String(kind.into())),
        ("index".into(), serde_json::value_of(&index)),
    ];
    if let Some(row) = row {
        fields.push(("row".into(), serde_json::value_of(&row)));
    }
    fields.extend([
        ("cycles".into(), serde_json::value_of(&z.cycles)),
        ("dwell_green".into(), serde_json::value_of(&z.dwell[0])),
        ("dwell_yellow".into(), serde_json::value_of(&z.dwell[1])),
        ("dwell_red".into(), serde_json::value_of(&z.dwell[2])),
        ("state".into(), Value::String(z.last_state.name().into())),
        ("power_w".into(), serde_json::value_of(&z.last_power_w)),
        ("budget_w".into(), serde_json::value_of(&z.last_budget_w)),
        ("coverage".into(), serde_json::value_of(&z.last_coverage)),
        ("peak_power_w".into(), serde_json::value_of(&z.peak_power_w)),
        (
            "min_headroom_w".into(),
            serde_json::value_of(&finite_or_zero(z.min_headroom_w)),
        ),
        ("min_coverage".into(), serde_json::value_of(&z.min_coverage)),
        (
            "p50_w".into(),
            serde_json::value_of(&z.power_sketch.quantile(0.5).unwrap_or(0.0)),
        ),
        (
            "p99_w".into(),
            serde_json::value_of(&z.power_sketch.quantile(0.99).unwrap_or(0.0)),
        ),
        (
            "series_stride".into(),
            serde_json::value_of(&z.series.stride()),
        ),
        (
            "series_len".into(),
            serde_json::value_of(&(z.series.samples().len() as u64)),
        ),
    ]);
    Value::Object(fields)
}

/// Renders the health plane as a JSONL stream: one `health_meta` header
/// (fingerprints, counts), one `zone` line per rack/row/facility
/// rollup, and one `alert` line per journal edge. [`validate_health`]
/// checks exactly this shape; CI runs it over `--health-out` output.
pub fn health_jsonl(health: &HealthPlane) -> String {
    let mut out = String::new();
    let fp = health.fingerprints();
    let report = health.report();
    let meta = Value::Object(vec![
        ("type".into(), Value::String("health_meta".into())),
        (
            "rollup_fingerprint".into(),
            Value::String(format!("{:016x}", fp.rollup)),
        ),
        (
            "sketch_fingerprint".into(),
            Value::String(format!("{:016x}", fp.sketch)),
        ),
        (
            "alert_fingerprint".into(),
            Value::String(format!("{:016x}", fp.alerts)),
        ),
        ("cycles".into(), serde_json::value_of(&report.cycles)),
        ("racks".into(), serde_json::value_of(&report.racks)),
        ("rows".into(), serde_json::value_of(&report.rows)),
        (
            "alert_edges".into(),
            serde_json::value_of(&report.alert_edges),
        ),
        (
            "alerts_open".into(),
            serde_json::value_of(&report.alerts_open),
        ),
        (
            "alerts_dropped".into(),
            serde_json::value_of(&report.alerts_dropped),
        ),
    ]);
    push_json_line(&mut out, &meta);
    let tree = health.rollup();
    let map = tree.map();
    for (r, z) in tree.racks().iter().enumerate() {
        let line = zone_line("rack", r as u64, Some(map.row_of(r) as u64), z);
        push_json_line(&mut out, &line);
    }
    for (row, z) in tree.rows().iter().enumerate() {
        push_json_line(&mut out, &zone_line("row", row as u64, None, z));
    }
    push_json_line(&mut out, &zone_line("facility", 0, None, tree.facility()));
    for e in health.alerts() {
        let edge = match e.edge {
            AlertEdge::Open => "open",
            AlertEdge::Resolve => "resolve",
        };
        let line = Value::Object(vec![
            ("type".into(), Value::String("alert".into())),
            ("seq".into(), serde_json::value_of(&e.seq)),
            ("at_ms".into(), serde_json::value_of(&e.at.as_millis())),
            ("rule".into(), Value::String(e.rule.to_string())),
            ("zone".into(), Value::String(e.zone.label())),
            ("edge".into(), Value::String(edge.into())),
            ("value".into(), serde_json::value_of(&e.value)),
            ("threshold".into(), serde_json::value_of(&e.threshold)),
        ]);
        push_json_line(&mut out, &line);
    }
    out
}

/// Summary returned by a successful [`validate_health`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthJsonlSummary {
    /// `health_meta` header lines seen (must be ≥ 1).
    pub meta_lines: usize,
    /// `zone` lines seen (must be ≥ 3: rack + row + facility).
    pub zone_lines: usize,
    /// `alert` lines seen.
    pub alert_lines: usize,
}

fn require_f64(obj: &Value, key: &str, line_no: usize) -> Result<f64, String> {
    require(obj, key, line_no)?
        .as_f64()
        .ok_or_else(|| format!("line {line_no}: `{key}` must be a number"))
}

/// Schema-checks a health JSONL stream produced by [`health_jsonl`].
/// CI runs this (via the `validate_health` binary) over the faulted
/// smoke experiment's `--health-out` output.
pub fn validate_health(text: &str) -> Result<HealthJsonlSummary, String> {
    let mut summary = HealthJsonlSummary {
        meta_lines: 0,
        zone_lines: 0,
        alert_lines: 0,
    };
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {line_no}: invalid JSON: {}", e.0))?;
        match require_str(&value, "type", line_no)? {
            "health_meta" => {
                for key in [
                    "rollup_fingerprint",
                    "sketch_fingerprint",
                    "alert_fingerprint",
                ] {
                    let fp = require_str(&value, key, line_no)?;
                    if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(format!("line {line_no}: `{key}` must be 16 hex digits"));
                    }
                }
                for key in ["cycles", "racks", "rows", "alert_edges", "alerts_dropped"] {
                    require_u64(&value, key, line_no)?;
                }
                summary.meta_lines += 1;
            }
            "zone" => {
                let kind = require_str(&value, "zone", line_no)?;
                if !matches!(kind, "rack" | "row" | "facility") {
                    return Err(format!("line {line_no}: unknown zone kind `{kind}`"));
                }
                if kind == "rack" {
                    require_u64(&value, "row", line_no)?;
                }
                for key in [
                    "index",
                    "cycles",
                    "dwell_green",
                    "dwell_yellow",
                    "dwell_red",
                ] {
                    require_u64(&value, key, line_no)?;
                }
                let state = require_str(&value, "state", line_no)?;
                if !matches!(state, "green" | "yellow" | "red") {
                    return Err(format!("line {line_no}: unknown zone state `{state}`"));
                }
                for key in ["power_w", "budget_w", "coverage", "min_coverage"] {
                    require_f64(&value, key, line_no)?;
                }
                let cov = require_f64(&value, "coverage", line_no)?;
                if !(0.0..=1.0).contains(&cov) {
                    return Err(format!("line {line_no}: coverage {cov} outside 0..=1"));
                }
                summary.zone_lines += 1;
            }
            "alert" => {
                require_u64(&value, "seq", line_no)?;
                require_u64(&value, "at_ms", line_no)?;
                if require_str(&value, "rule", line_no)?.is_empty() {
                    return Err(format!("line {line_no}: alert rule must be non-empty"));
                }
                require_str(&value, "zone", line_no)?;
                let edge = require_str(&value, "edge", line_no)?;
                if !matches!(edge, "open" | "resolve") {
                    return Err(format!("line {line_no}: unknown alert edge `{edge}`"));
                }
                require_f64(&value, "value", line_no)?;
                require_f64(&value, "threshold", line_no)?;
                summary.alert_lines += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown record type `{other}`"));
            }
        }
    }
    if summary.meta_lines == 0 {
        return Err("stream has no `health_meta` header line".to_string());
    }
    if summary.zone_lines < 3 {
        return Err(format!(
            "stream has {} zone lines; expected at least rack + row + facility",
            summary.zone_lines
        ));
    }
    Ok(summary)
}

/// Summary returned by a successful [`validate_jsonl`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// `meta` header lines seen (must be ≥ 1).
    pub meta_lines: usize,
    /// `span` lines seen.
    pub span_lines: usize,
    /// `metric` lines seen.
    pub metric_lines: usize,
}

fn require<'a>(obj: &'a Value, key: &str, line_no: usize) -> Result<&'a Value, String> {
    match obj.get(key) {
        Some(v) if !v.is_null() => Ok(v),
        _ => Err(format!("line {line_no}: missing required key `{key}`")),
    }
}

fn require_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    require(obj, key, line_no)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: `{key}` must be a non-negative integer"))
}

fn require_str<'a>(obj: &'a Value, key: &str, line_no: usize) -> Result<&'a str, String> {
    require(obj, key, line_no)?
        .as_str()
        .ok_or_else(|| format!("line {line_no}: `{key}` must be a string"))
}

/// Schema-checks a JSONL trace stream produced by [`jsonl`]. Returns
/// line-numbered errors on malformed JSON, unknown record types, missing
/// keys or inconsistent span intervals. CI runs this over the smoke
/// experiment's `--trace-out` output.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary {
        meta_lines: 0,
        span_lines: 0,
        metric_lines: 0,
    };
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {line_no}: invalid JSON: {}", e.0))?;
        match require_str(&value, "type", line_no)? {
            "meta" => {
                for key in ["span_fingerprint", "metrics_fingerprint"] {
                    let fp = require_str(&value, key, line_no)?;
                    if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(format!("line {line_no}: `{key}` must be 16 hex digits"));
                    }
                }
                require_u64(&value, "spans_closed", line_no)?;
                require_u64(&value, "spans_dropped", line_no)?;
                summary.meta_lines += 1;
            }
            "span" => {
                require_u64(&value, "id", line_no)?;
                let name = require_str(&value, "name", line_no)?;
                if name.is_empty() {
                    return Err(format!("line {line_no}: span name must be non-empty"));
                }
                let start = require_u64(&value, "start_ms", line_no)?;
                let end = require_u64(&value, "end_ms", line_no)?;
                if end < start {
                    return Err(format!("line {line_no}: span ends before it starts"));
                }
                if !matches!(value.get("attrs"), Some(Value::Object(_))) {
                    return Err(format!("line {line_no}: `attrs` must be an object"));
                }
                summary.span_lines += 1;
            }
            "metric" => {
                require_str(&value, "name", line_no)?;
                let kind = require_str(&value, "kind", line_no)?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(format!("line {line_no}: unknown metric kind `{kind}`"));
                }
                require(&value, "value", line_no)?;
                summary.metric_lines += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown record type `{other}`"));
            }
        }
    }
    if summary.meta_lines == 0 {
        return Err("stream has no `meta` header line".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;
    use ppc_simkit::SimTime;

    fn sample() -> (SpanRecorder, MetricsRegistry) {
        let mut spans = SpanRecorder::new(64);
        let mut metrics = MetricsRegistry::new();
        spans.open("cycle", SimTime::from_secs(1));
        spans.attr("state", AttrValue::Str("yellow"));
        spans.open("select", SimTime::from_secs(1));
        spans.attr("targets", AttrValue::U64(2));
        spans.close(SimTime::from_secs(1));
        spans.close(SimTime::from_secs(1));
        let c = metrics.counter("commands_applied");
        metrics.inc(c, 2);
        let h = metrics.histogram("selection_size", &[1.0, 4.0]);
        metrics.observe(h, 2.0);
        (spans, metrics)
    }

    #[test]
    fn chrome_trace_is_loadable_json_with_nested_spans() {
        let (spans, _) = sample();
        let text = chrome_trace(&spans);
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // Metadata event + two spans.
        assert_eq!(events.len(), 3);
        let select = events
            .iter()
            .find(|e| e["name"].as_str() == Some("select"))
            .unwrap();
        let cycle = events
            .iter()
            .find(|e| e["name"].as_str() == Some("cycle"))
            .unwrap();
        // Child interval strictly inside parent interval → Perfetto nests.
        let (cts, cdur) = (
            cycle["ts"].as_u64().unwrap(),
            cycle["dur"].as_u64().unwrap(),
        );
        let (sts, sdur) = (
            select["ts"].as_u64().unwrap(),
            select["dur"].as_u64().unwrap(),
        );
        assert!(cts < sts && sts + sdur <= cts + cdur);
        assert_eq!(select["args"]["targets"].as_u64(), Some(2));
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let (spans, metrics) = sample();
        let text = jsonl(&spans, &metrics);
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.meta_lines, 1);
        assert_eq!(summary.span_lines, 2);
        assert_eq!(summary.metric_lines, 2);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_jsonl("{\"type\":\"mystery\"}").is_err());
        // Span missing name.
        let bad = "{\"type\":\"span\",\"id\":1,\"start_ms\":0,\"end_ms\":0,\"attrs\":{}}";
        let err = validate_jsonl(bad).unwrap_err();
        assert!(err.contains("name"), "unexpected error: {err}");
        // Inverted interval.
        let inverted = "{\"type\":\"span\",\"id\":1,\"name\":\"x\",\"start_ms\":5,\
                        \"end_ms\":1,\"start_seq\":0,\"end_seq\":0,\"attrs\":{}}";
        assert!(validate_jsonl(inverted).is_err());
        // No meta header at all.
        let headless = "{\"type\":\"metric\",\"name\":\"a\",\"kind\":\"counter\",\"value\":1}";
        assert!(validate_jsonl(headless).unwrap_err().contains("meta"));
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let (_, metrics) = sample();
        let text = prometheus(&metrics);
        assert!(text.contains("# HELP commands_applied deterministic ppc counter"));
        assert!(text.contains("# TYPE commands_applied counter"));
        assert!(text.contains("commands_applied 2"));
        assert!(text.contains("selection_size_bucket{le=\"1\"} 0"));
        assert!(text.contains("selection_size_bucket{le=\"4\"} 1"));
        assert!(text.contains("selection_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("selection_size_count 1"));
        // Every instrument gets a HELP alongside its TYPE.
        assert_eq!(
            text.matches("# HELP").count(),
            text.matches("# TYPE").count()
        );

        // Labeled rollup series: the health exporter emits the same
        // cumulative-bucket discipline under {rack,row} labels.
        let health = sample_health();
        let labeled = prometheus_health(&health);
        assert!(labeled.contains("# TYPE ppc_rack_power_dist_watts histogram"));
        assert!(labeled.contains("ppc_rack_power_watts{rack=\"0\",row=\"0\"}"));
        assert!(labeled.contains("ppc_row_power_watts{row=\"0\"}"));
        let bucket_lines: Vec<&str> = labeled
            .lines()
            .filter(|l| l.starts_with("ppc_rack_power_dist_watts_bucket{rack=\"0\",row=\"0\""))
            .collect();
        assert!(
            bucket_lines.len() >= 2,
            "expected labeled bucket series, got: {labeled}"
        );
        // Buckets are cumulative and end at the +Inf total.
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        let inf = bucket_lines.last().unwrap();
        assert!(inf.contains("le=\"+Inf\""));
        assert!(labeled.contains("ppc_rack_power_dist_watts_count{rack=\"0\",row=\"0\"} 3"));
    }

    fn sample_health() -> HealthPlane {
        use crate::hub::StageWork;
        use crate::rollup::{CycleObservation, ZoneMap, ZoneState};
        let mut health = HealthPlane::new(ZoneMap::single_rack());
        for (i, power) in [100.0, 140.0, 180.0].iter().enumerate() {
            let state = if *power > 150.0 {
                ZoneState::Red
            } else {
                ZoneState::Green
            };
            health.observe_cycle(
                ppc_simkit::SimTime::from_secs(i as u64),
                &CycleObservation {
                    rack_state: &[state],
                    rack_power_w: &[*power],
                    rack_budget_w: &[160.0],
                    rack_coverage: &[1.0],
                    facility_state: state,
                    facility_power_w: *power,
                    facility_budget_w: 160.0,
                    facility_coverage: 1.0,
                },
                &StageWork {
                    samples: 4,
                    commands: 1,
                    racks: 1,
                },
            );
        }
        health.observe_node_power(&[25.0, 26.0, 27.0, 28.0]);
        health
    }

    #[test]
    fn health_jsonl_round_trips_through_validator() {
        let health = sample_health();
        let text = health_jsonl(&health);
        let summary = validate_health(&text).expect("generated health JSONL must validate");
        assert_eq!(summary.meta_lines, 1);
        // Single-rack plane: one rack + one row + facility.
        assert_eq!(summary.zone_lines, 3);
        assert_eq!(summary.alert_lines, health.alerts().len());
    }

    #[test]
    fn health_validator_rejects_malformed_streams() {
        assert!(validate_health("not json").is_err());
        assert!(validate_health("{\"type\":\"mystery\"}").is_err());
        // No meta header.
        let headless = "{\"type\":\"alert\",\"seq\":0,\"at_ms\":1,\"rule\":\"r\",\
                        \"zone\":\"facility\",\"edge\":\"open\",\"value\":1.0,\"threshold\":0.5}";
        assert!(validate_health(headless)
            .unwrap_err()
            .contains("health_meta"));
        // Bad fingerprint length.
        let bad_meta = "{\"type\":\"health_meta\",\"rollup_fingerprint\":\"abc\",\
                        \"sketch_fingerprint\":\"0000000000000000\",\
                        \"alert_fingerprint\":\"0000000000000000\",\"cycles\":0,\
                        \"racks\":1,\"rows\":1,\"alert_edges\":0,\"alerts_open\":0,\
                        \"alerts_dropped\":0}";
        assert!(validate_health(bad_meta).unwrap_err().contains("16 hex"));
        // A valid stream mutated to an unknown edge fails.
        let good = health_jsonl(&sample_health());
        let mutated = good.replace("\"open\"", "\"fired\"");
        if mutated != good {
            assert!(validate_health(&mutated).is_err());
        }
    }
}
