//! Trace and metrics exporters.
//!
//! Three formats, all rendered from the deterministic recorder state:
//!
//! * **JSONL** — one self-describing JSON object per line (`meta`,
//!   `span`, `metric`, `flight` records) for streaming ingestion and the
//!   CI schema check ([`validate_jsonl`]).
//! * **Chrome `trace_event` JSON** — loadable in Perfetto /
//!   `chrome://tracing` for a visual per-cycle timeline. Sim time has
//!   millisecond resolution while many stage spans open and close within
//!   one tick, so timestamps are synthesized as
//!   `µs = sim_ms × 1000 + intra-tick sequence`: stages nest visibly and
//!   order exactly as recorded.
//! * **Prometheus text** — the classic `# TYPE` + sample lines dump of
//!   the metrics registry.
//!
//! Exporters never mutate recorder state and fingerprints are rendered
//! as fixed-width hex strings (JSON numbers cannot hold all `u64`s).

use crate::metrics::{MetricValue, MetricsRegistry};
use crate::span::{AttrValue, SpanRecord, SpanRecorder};
use serde::Value;
use std::fmt::Write as _;

/// Renders `value` as compact JSON text.
fn json_text(value: &Value) -> String {
    // ppc-lint: allow(panic-path): serializing the vendored Value type cannot fail
    serde_json::to_string(value).expect("value serialization cannot fail")
}

/// Appends `value` as one JSON line.
fn push_json_line(out: &mut String, value: &Value) {
    out.push_str(&json_text(value));
    out.push('\n');
}

fn attr_value(v: &AttrValue) -> Value {
    match *v {
        AttrValue::U64(x) => serde_json::value_of(&x),
        AttrValue::I64(x) => serde_json::value_of(&x),
        AttrValue::F64(x) => serde_json::value_of(&x),
        AttrValue::Str(s) => Value::String(s.to_string()),
    }
}

fn attrs_object(span: &SpanRecord) -> Value {
    Value::Object(
        span.attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), attr_value(v)))
            .collect(),
    )
}

/// Synthesized microsecond timestamp of a span's open edge.
fn ts_us(span: &SpanRecord) -> u64 {
    span.start.as_millis() * 1000 + u64::from(span.start_seq)
}

/// Synthesized duration in microseconds (≥ 1 so zero-width stage spans
/// stay visible in trace viewers).
fn dur_us(span: &SpanRecord) -> u64 {
    let end = span.end.as_millis() * 1000 + u64::from(span.end_seq);
    end.saturating_sub(ts_us(span)).max(1)
}

/// Renders the retained spans as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form). Open the file in Perfetto
/// (ui.perfetto.dev) or `chrome://tracing`.
pub fn chrome_trace(spans: &SpanRecorder) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 1);
    events.push(Value::Object(vec![
        ("ph".into(), Value::String("M".into())),
        ("name".into(), Value::String("process_name".into())),
        ("pid".into(), serde_json::value_of(&1u64)),
        (
            "args".into(),
            Value::Object(vec![(
                "name".into(),
                Value::String("ppc cluster simulation".into()),
            )]),
        ),
    ]));
    for span in spans.iter() {
        events.push(Value::Object(vec![
            ("name".into(), Value::String(span.name.to_string())),
            ("ph".into(), Value::String("X".into())),
            ("ts".into(), serde_json::value_of(&ts_us(span))),
            ("dur".into(), serde_json::value_of(&dur_us(span))),
            ("pid".into(), serde_json::value_of(&1u64)),
            ("tid".into(), serde_json::value_of(&1u64)),
            ("args".into(), attrs_object(span)),
        ]));
    }
    let root = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::String("ms".into())),
    ]);
    json_text(&root)
}

/// Renders recorder + registry state as a JSONL event stream: a `meta`
/// header line (fingerprints, counts), one `span` line per retained
/// span, and one `metric` line per instrument. [`validate_jsonl`] checks
/// exactly this shape.
pub fn jsonl(spans: &SpanRecorder, metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    let meta = Value::Object(vec![
        ("type".into(), Value::String("meta".into())),
        (
            "span_fingerprint".into(),
            Value::String(format!("{:016x}", spans.fingerprint())),
        ),
        (
            "metrics_fingerprint".into(),
            Value::String(format!("{:016x}", metrics.fingerprint())),
        ),
        ("spans_closed".into(), serde_json::value_of(&spans.closed())),
        (
            "spans_dropped".into(),
            serde_json::value_of(&spans.dropped()),
        ),
        (
            "spans_retained".into(),
            serde_json::value_of(&(spans.len() as u64)),
        ),
    ]);
    push_json_line(&mut out, &meta);
    for span in spans.iter() {
        let line = Value::Object(vec![
            ("type".into(), Value::String("span".into())),
            ("id".into(), serde_json::value_of(&span.id.0)),
            (
                "parent".into(),
                span.parent
                    .map_or(Value::Null, |p| serde_json::value_of(&p.0)),
            ),
            ("name".into(), Value::String(span.name.to_string())),
            (
                "start_ms".into(),
                serde_json::value_of(&span.start.as_millis()),
            ),
            ("end_ms".into(), serde_json::value_of(&span.end.as_millis())),
            ("start_seq".into(), serde_json::value_of(&span.start_seq)),
            ("end_seq".into(), serde_json::value_of(&span.end_seq)),
            ("attrs".into(), attrs_object(span)),
        ]);
        push_json_line(&mut out, &line);
    }
    for dump in metrics.dump() {
        let (kind, value) = match &dump.value {
            MetricValue::Counter(v) => ("counter", serde_json::value_of(v)),
            MetricValue::Gauge(v) => ("gauge", serde_json::value_of(v)),
            MetricValue::Histogram(h) => ("histogram", serde_json::value_of(h)),
        };
        let line = Value::Object(vec![
            ("type".into(), Value::String("metric".into())),
            ("name".into(), Value::String(dump.name)),
            ("kind".into(), Value::String(kind.into())),
            ("value".into(), value),
        ]);
        push_json_line(&mut out, &line);
    }
    out
}

/// Renders the metrics registry in the Prometheus text exposition
/// format (`# TYPE` headers, `_bucket`/`_sum`/`_count` histogram
/// series with cumulative `le` labels).
pub fn prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for dump in metrics.dump() {
        let name = &dump.name;
        match &dump.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Summary returned by a successful [`validate_jsonl`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlSummary {
    /// `meta` header lines seen (must be ≥ 1).
    pub meta_lines: usize,
    /// `span` lines seen.
    pub span_lines: usize,
    /// `metric` lines seen.
    pub metric_lines: usize,
}

fn require<'a>(obj: &'a Value, key: &str, line_no: usize) -> Result<&'a Value, String> {
    match obj.get(key) {
        Some(v) if !v.is_null() => Ok(v),
        _ => Err(format!("line {line_no}: missing required key `{key}`")),
    }
}

fn require_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    require(obj, key, line_no)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: `{key}` must be a non-negative integer"))
}

fn require_str<'a>(obj: &'a Value, key: &str, line_no: usize) -> Result<&'a str, String> {
    require(obj, key, line_no)?
        .as_str()
        .ok_or_else(|| format!("line {line_no}: `{key}` must be a string"))
}

/// Schema-checks a JSONL trace stream produced by [`jsonl`]. Returns
/// line-numbered errors on malformed JSON, unknown record types, missing
/// keys or inconsistent span intervals. CI runs this over the smoke
/// experiment's `--trace-out` output.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary {
        meta_lines: 0,
        span_lines: 0,
        metric_lines: 0,
    };
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {line_no}: invalid JSON: {}", e.0))?;
        match require_str(&value, "type", line_no)? {
            "meta" => {
                for key in ["span_fingerprint", "metrics_fingerprint"] {
                    let fp = require_str(&value, key, line_no)?;
                    if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(format!("line {line_no}: `{key}` must be 16 hex digits"));
                    }
                }
                require_u64(&value, "spans_closed", line_no)?;
                require_u64(&value, "spans_dropped", line_no)?;
                summary.meta_lines += 1;
            }
            "span" => {
                require_u64(&value, "id", line_no)?;
                let name = require_str(&value, "name", line_no)?;
                if name.is_empty() {
                    return Err(format!("line {line_no}: span name must be non-empty"));
                }
                let start = require_u64(&value, "start_ms", line_no)?;
                let end = require_u64(&value, "end_ms", line_no)?;
                if end < start {
                    return Err(format!("line {line_no}: span ends before it starts"));
                }
                if !matches!(value.get("attrs"), Some(Value::Object(_))) {
                    return Err(format!("line {line_no}: `attrs` must be an object"));
                }
                summary.span_lines += 1;
            }
            "metric" => {
                require_str(&value, "name", line_no)?;
                let kind = require_str(&value, "kind", line_no)?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(format!("line {line_no}: unknown metric kind `{kind}`"));
                }
                require(&value, "value", line_no)?;
                summary.metric_lines += 1;
            }
            other => {
                return Err(format!("line {line_no}: unknown record type `{other}`"));
            }
        }
    }
    if summary.meta_lines == 0 {
        return Err("stream has no `meta` header line".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;
    use ppc_simkit::SimTime;

    fn sample() -> (SpanRecorder, MetricsRegistry) {
        let mut spans = SpanRecorder::new(64);
        let mut metrics = MetricsRegistry::new();
        spans.open("cycle", SimTime::from_secs(1));
        spans.attr("state", AttrValue::Str("yellow"));
        spans.open("select", SimTime::from_secs(1));
        spans.attr("targets", AttrValue::U64(2));
        spans.close(SimTime::from_secs(1));
        spans.close(SimTime::from_secs(1));
        let c = metrics.counter("commands_applied");
        metrics.inc(c, 2);
        let h = metrics.histogram("selection_size", &[1.0, 4.0]);
        metrics.observe(h, 2.0);
        (spans, metrics)
    }

    #[test]
    fn chrome_trace_is_loadable_json_with_nested_spans() {
        let (spans, _) = sample();
        let text = chrome_trace(&spans);
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // Metadata event + two spans.
        assert_eq!(events.len(), 3);
        let select = events
            .iter()
            .find(|e| e["name"].as_str() == Some("select"))
            .unwrap();
        let cycle = events
            .iter()
            .find(|e| e["name"].as_str() == Some("cycle"))
            .unwrap();
        // Child interval strictly inside parent interval → Perfetto nests.
        let (cts, cdur) = (
            cycle["ts"].as_u64().unwrap(),
            cycle["dur"].as_u64().unwrap(),
        );
        let (sts, sdur) = (
            select["ts"].as_u64().unwrap(),
            select["dur"].as_u64().unwrap(),
        );
        assert!(cts < sts && sts + sdur <= cts + cdur);
        assert_eq!(select["args"]["targets"].as_u64(), Some(2));
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let (spans, metrics) = sample();
        let text = jsonl(&spans, &metrics);
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.meta_lines, 1);
        assert_eq!(summary.span_lines, 2);
        assert_eq!(summary.metric_lines, 2);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_jsonl("{\"type\":\"mystery\"}").is_err());
        // Span missing name.
        let bad = "{\"type\":\"span\",\"id\":1,\"start_ms\":0,\"end_ms\":0,\"attrs\":{}}";
        let err = validate_jsonl(bad).unwrap_err();
        assert!(err.contains("name"), "unexpected error: {err}");
        // Inverted interval.
        let inverted = "{\"type\":\"span\",\"id\":1,\"name\":\"x\",\"start_ms\":5,\
                        \"end_ms\":1,\"start_seq\":0,\"end_seq\":0,\"attrs\":{}}";
        assert!(validate_jsonl(inverted).is_err());
        // No meta header at all.
        let headless = "{\"type\":\"metric\",\"name\":\"a\",\"kind\":\"counter\",\"value\":1}";
        assert!(validate_jsonl(headless).unwrap_err().contains("meta"));
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let (_, metrics) = sample();
        let text = prometheus(&metrics);
        assert!(text.contains("# TYPE commands_applied counter"));
        assert!(text.contains("commands_applied 2"));
        assert!(text.contains("selection_size_bucket{le=\"1\"} 0"));
        assert!(text.contains("selection_size_bucket{le=\"4\"} 1"));
        assert!(text.contains("selection_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("selection_size_count 1"));
    }
}
