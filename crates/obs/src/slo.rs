//! Declarative SLO rules and deterministic burn-rate alerting.
//!
//! At fleet scale the hazard is *sustained* budget pressure, not an
//! instantaneous sample (Ardestani et al., PAPERS.md). The engine
//! therefore evaluates a small declarative rule grammar against the
//! rollup tree every control cycle:
//!
//! * [`SloRule::DwellBurnRate`] — the fraction of recent cycles at or
//!   above a severity must stay below a threshold over **both** a short
//!   and a long window (the classic multi-window burn-rate alert: the
//!   long window filters blips, the short window makes resolve fast).
//! * [`SloRule::CapOvershoot`] — zone power above its budget by a
//!   relative margin for N consecutive cycles (magnitude × duration).
//! * [`SloRule::CoverageFloor`] — facility collector coverage below a
//!   floor for N consecutive cycles.
//! * [`SloRule::RackStarvation`] — a rack's delegated budget below a
//!   fraction of its fair share for N consecutive cycles.
//!
//! Firings and resolutions are appended to a bounded, strictly ordered
//! alert journal ([`AlertEvent`] with open/resolve edges). Everything —
//! window state, event order, values — is a pure function of the
//! observation stream, so [`SloEngine::fingerprint`] joins the
//! determinism gate. Thresholds compare with `>=`/`<=` so a window
//! sitting *exactly at* the threshold fires (pinned by a boundary test).

use crate::rollup::{RollupTree, ZoneState, ZoneStats};
use ppc_simkit::hash::Fnv1a;
use ppc_simkit::SimTime;
use std::fmt::Write as _;

/// Bound on retained alert events; later events increment `dropped`.
const MAX_ALERT_EVENTS: usize = 4_096;

/// Which zone of the rollup tree an alert refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneId {
    /// A rack, by rack index.
    Rack(u32),
    /// A row, by row index.
    Row(u32),
    /// The facility root.
    Facility,
}

impl ZoneId {
    /// Render as `rack-3` / `row-1` / `facility`.
    pub fn label(&self) -> String {
        match *self {
            ZoneId::Rack(r) => format!("rack-{r}"),
            ZoneId::Row(r) => format!("row-{r}"),
            ZoneId::Facility => "facility".to_string(),
        }
    }

    fn fold(&self, h: &mut Fnv1a) {
        match *self {
            ZoneId::Rack(r) => {
                h.write_u8(0);
                h.write_u64(u64::from(r));
            }
            ZoneId::Row(r) => {
                h.write_u8(1);
                h.write_u64(u64::from(r));
            }
            ZoneId::Facility => h.write_u8(2),
        }
    }
}

/// Whether an alert event opened or resolved the condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertEdge {
    /// The rule started firing.
    Open,
    /// The rule stopped firing.
    Resolve,
}

/// One declarative health rule. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloRule {
    /// Dual-window dwell burn rate at or above `min_state`.
    DwellBurnRate {
        /// Stable rule name used in events and exports.
        name: &'static str,
        /// Severity that counts as "bad" (at or above).
        min_state: ZoneState,
        /// Short window length, in control cycles.
        short_cycles: u32,
        /// Long window length, in control cycles (≥ short).
        long_cycles: u32,
        /// Bad fraction at which the rule fires (inclusive).
        max_fraction: f64,
    },
    /// Power above budget by a relative margin, sustained.
    CapOvershoot {
        /// Stable rule name.
        name: &'static str,
        /// Fires while `power > budget × (1 + margin_fraction)`.
        margin_fraction: f64,
        /// Consecutive cycles before opening.
        hold_cycles: u32,
    },
    /// Facility collector coverage below a floor, sustained.
    CoverageFloor {
        /// Stable rule name.
        name: &'static str,
        /// Fires while `coverage < floor`.
        floor: f64,
        /// Consecutive cycles before opening.
        hold_cycles: u32,
    },
    /// Rack budget below a fraction of its fair share, sustained.
    RackStarvation {
        /// Stable rule name.
        name: &'static str,
        /// Fires while `budget < fraction × facility_budget / racks`.
        floor_fraction: f64,
        /// Consecutive cycles before opening.
        hold_cycles: u32,
    },
}

impl SloRule {
    /// The rule's stable name.
    pub fn name(&self) -> &'static str {
        match *self {
            SloRule::DwellBurnRate { name, .. }
            | SloRule::CapOvershoot { name, .. }
            | SloRule::CoverageFloor { name, .. }
            | SloRule::RackStarvation { name, .. } => name,
        }
    }

    fn fold(&self, h: &mut Fnv1a) {
        h.write_bytes(self.name().as_bytes());
        match *self {
            SloRule::DwellBurnRate {
                min_state,
                short_cycles,
                long_cycles,
                max_fraction,
                ..
            } => {
                h.write_u8(0);
                h.write_u64(min_state.index() as u64);
                h.write_u64(u64::from(short_cycles));
                h.write_u64(u64::from(long_cycles));
                h.write_f64(max_fraction);
            }
            SloRule::CapOvershoot {
                margin_fraction,
                hold_cycles,
                ..
            } => {
                h.write_u8(1);
                h.write_f64(margin_fraction);
                h.write_u64(u64::from(hold_cycles));
            }
            SloRule::CoverageFloor {
                floor, hold_cycles, ..
            } => {
                h.write_u8(2);
                h.write_f64(floor);
                h.write_u64(u64::from(hold_cycles));
            }
            SloRule::RackStarvation {
                floor_fraction,
                hold_cycles,
                ..
            } => {
                h.write_u8(3);
                h.write_f64(floor_fraction);
                h.write_u64(u64::from(hold_cycles));
            }
        }
    }
}

/// The default fleet rule set.
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule::DwellBurnRate {
            name: "red-dwell-burn",
            min_state: ZoneState::Red,
            short_cycles: 30,
            long_cycles: 120,
            max_fraction: 0.5,
        },
        SloRule::DwellBurnRate {
            name: "yellow-dwell-burn",
            min_state: ZoneState::Yellow,
            short_cycles: 60,
            long_cycles: 240,
            max_fraction: 0.9,
        },
        SloRule::CapOvershoot {
            name: "cap-overshoot",
            margin_fraction: 0.02,
            hold_cycles: 10,
        },
        SloRule::CoverageFloor {
            name: "coverage-floor",
            floor: 0.6,
            hold_cycles: 20,
        },
        SloRule::RackStarvation {
            name: "rack-starvation",
            floor_fraction: 0.25,
            hold_cycles: 30,
        },
    ]
}

/// One edge in the deterministic alert journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertEvent {
    /// Monotone sequence number (journal order).
    pub seq: u64,
    /// Simulation time of the edge.
    pub at: SimTime,
    /// Rule name.
    pub rule: &'static str,
    /// Zone the rule fired for.
    pub zone: ZoneId,
    /// Open or resolve.
    pub edge: AlertEdge,
    /// Observed value at the edge (fraction, watts or coverage —
    /// rule-dependent).
    pub value: f64,
    /// The rule threshold the value crossed.
    pub threshold: f64,
}

/// Dual-window ring of bad/good flags with incrementally maintained
/// window sums. `short ≤ long`; both sums cover at most the observed
/// history ("window shorter than history" and "zero-traffic" cases are
/// pinned by boundary tests).
///
/// The ring is a u64 bitset and position wrap is a compare-and-reset,
/// not a modulo: this push runs for every dwell rule × every zone ×
/// every control cycle, so it is one of the hottest paths in the
/// health plane.
#[derive(Debug, Clone, PartialEq)]
struct BurnWindow {
    short: u32,
    long: u32,
    /// `long` bad/good bits, `ceil(long / 64)` words.
    bits: Vec<u64>,
    /// Next bit position to write (`0..long`).
    head: u32,
    pushes: u64,
    short_bad: u32,
    long_bad: u32,
}

impl BurnWindow {
    fn new(short: u32, long: u32) -> Self {
        let long = long.max(1);
        let short = short.clamp(1, long);
        BurnWindow {
            short,
            long,
            bits: vec![0; long.div_ceil(64) as usize],
            head: 0,
            pushes: 0,
            short_bad: 0,
            long_bad: 0,
        }
    }

    #[inline]
    fn bit(&self, pos: u32) -> u32 {
        (self.bits[(pos / 64) as usize] >> (pos % 64)) as u32 & 1
    }

    fn push(&mut self, bad: bool) {
        if self.pushes >= u64::from(self.long) {
            self.long_bad -= self.bit(self.head);
        }
        if self.pushes >= u64::from(self.short) {
            // The sample falling out of the short window was written
            // `short` pushes ago (read before this slot is overwritten
            // when short == long).
            let mut leaving = self.head + self.long - self.short;
            if leaving >= self.long {
                leaving -= self.long;
            }
            self.short_bad -= self.bit(leaving);
        }
        let mask = 1u64 << (self.head % 64);
        let word = &mut self.bits[(self.head / 64) as usize];
        if bad {
            *word |= mask;
            self.short_bad += 1;
            self.long_bad += 1;
        } else {
            *word &= !mask;
        }
        self.head += 1;
        if self.head == self.long {
            self.head = 0;
        }
        self.pushes += 1;
    }

    /// Whether the short-window bad fraction is at or above `frac`
    /// (integer-side multiply, no division — exact when `frac × n` is
    /// representable, which holds for the rule-grammar thresholds).
    #[inline]
    fn short_meets(&self, frac: f64) -> bool {
        let n = self.pushes.min(u64::from(self.short));
        n > 0 && f64::from(self.short_bad) >= frac * n as f64
    }

    /// Whether the long-window bad fraction is at or above `frac`.
    #[inline]
    fn long_meets(&self, frac: f64) -> bool {
        let n = self.pushes.min(u64::from(self.long));
        n > 0 && f64::from(self.long_bad) >= frac * n as f64
    }

    /// Bad fraction over the short window (capped at observed history).
    fn short_fraction(&self) -> f64 {
        let n = self.pushes.min(u64::from(self.short));
        if n == 0 {
            return 0.0;
        }
        f64::from(self.short_bad) / n as f64
    }

    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.pushes);
        h.write_u64(u64::from(self.short_bad));
        h.write_u64(u64::from(self.long_bad));
    }
}

/// Per-(rule, zone) evaluation state.
#[derive(Debug, Clone, PartialEq)]
struct RuleState {
    zone: ZoneId,
    window: Option<BurnWindow>,
    consecutive: u32,
    active: bool,
}

/// The SLO engine: rules, per-zone window state and the bounded alert
/// journal. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    /// Flattened per-rule, per-zone state (rule-major, zone order:
    /// racks, then rows, then facility — the subset each rule watches).
    states: Vec<RuleState>,
    /// Offsets into `states`, one per rule, plus a final end marker.
    offsets: Vec<usize>,
    events: Vec<AlertEvent>,
    dropped: u64,
    seq: u64,
    open: u64,
}

/// The zones a rule watches, in deterministic order.
fn zones_for(rule: &SloRule, racks: usize, rows: usize) -> Vec<ZoneId> {
    let mut zones = Vec::new();
    match rule {
        SloRule::CoverageFloor { .. } => zones.push(ZoneId::Facility),
        SloRule::RackStarvation { .. } => {
            zones.extend((0..racks as u32).map(ZoneId::Rack));
        }
        SloRule::DwellBurnRate { .. } | SloRule::CapOvershoot { .. } => {
            zones.extend((0..racks as u32).map(ZoneId::Rack));
            zones.extend((0..rows as u32).map(ZoneId::Row));
            zones.push(ZoneId::Facility);
        }
    }
    zones
}

impl SloEngine {
    /// An engine over `rules` for a tree with the given zone counts.
    pub fn new(rules: Vec<SloRule>, racks: usize, rows: usize) -> Self {
        let mut states = Vec::new();
        let mut offsets = Vec::with_capacity(rules.len() + 1);
        for rule in &rules {
            offsets.push(states.len());
            for zone in zones_for(rule, racks, rows) {
                let window = match *rule {
                    SloRule::DwellBurnRate {
                        short_cycles,
                        long_cycles,
                        ..
                    } => Some(BurnWindow::new(short_cycles, long_cycles)),
                    _ => None,
                };
                states.push(RuleState {
                    zone,
                    window,
                    consecutive: 0,
                    active: false,
                });
            }
        }
        offsets.push(states.len());
        SloEngine {
            rules,
            states,
            offsets,
            events: Vec::new(),
            dropped: 0,
            seq: 0,
            open: 0,
        }
    }

    /// Evaluates every rule against the tree's latest cycle. Returns
    /// the journal length *before* evaluation; newly appended events
    /// are `engine.events()[before..]`.
    pub fn evaluate(&mut self, now: SimTime, tree: &RollupTree) -> usize {
        let before = self.events.len();
        let racks = tree.racks().len();
        let fair_share = if racks > 0 {
            tree.facility().last_budget_w / racks as f64
        } else {
            0.0
        };
        for ri in 0..self.rules.len() {
            let rule = self.rules[ri];
            for si in self.offsets[ri]..self.offsets[ri + 1] {
                let zone = self.states[si].zone;
                let stats = zone_stats(tree, zone);
                let (firing, value, threshold) = match rule {
                    SloRule::DwellBurnRate {
                        min_state,
                        max_fraction,
                        ..
                    } => {
                        let bad = stats.last_state >= min_state;
                        let was_active = self.states[si].active;
                        // Burn rules always allocate a window at
                        // construction; a missing one is inert.
                        let Some(w) = self.states[si].window.as_mut() else {
                            continue;
                        };
                        w.push(bad);
                        let firing = w.short_meets(max_fraction) && w.long_meets(max_fraction);
                        // The fraction divides; only pay for it on an
                        // edge (this arm runs per zone per cycle).
                        let value = if firing != was_active {
                            w.short_fraction()
                        } else {
                            0.0
                        };
                        (firing, value, max_fraction)
                    }
                    SloRule::CapOvershoot {
                        margin_fraction,
                        hold_cycles,
                        ..
                    } => {
                        let limit = stats.last_budget_w * (1.0 + margin_fraction);
                        let over = stats.last_power_w > limit;
                        hold(
                            &mut self.states[si].consecutive,
                            over,
                            hold_cycles,
                            stats.last_power_w - stats.last_budget_w,
                            stats.last_budget_w * margin_fraction,
                        )
                    }
                    SloRule::CoverageFloor {
                        floor, hold_cycles, ..
                    } => {
                        let under = stats.last_coverage < floor;
                        hold(
                            &mut self.states[si].consecutive,
                            under,
                            hold_cycles,
                            stats.last_coverage,
                            floor,
                        )
                    }
                    SloRule::RackStarvation {
                        floor_fraction,
                        hold_cycles,
                        ..
                    } => {
                        let floor = floor_fraction * fair_share;
                        let starved = fair_share > 0.0 && stats.last_budget_w < floor;
                        hold(
                            &mut self.states[si].consecutive,
                            starved,
                            hold_cycles,
                            stats.last_budget_w,
                            floor,
                        )
                    }
                };
                let state = &mut self.states[si];
                if firing != state.active {
                    state.active = firing;
                    let edge = if firing {
                        self.open += 1;
                        AlertEdge::Open
                    } else {
                        self.open -= 1;
                        AlertEdge::Resolve
                    };
                    let event = AlertEvent {
                        seq: self.seq,
                        at: now,
                        rule: rule.name(),
                        zone,
                        edge,
                        value,
                        threshold,
                    };
                    self.seq += 1;
                    if self.events.len() < MAX_ALERT_EVENTS {
                        self.events.push(event);
                    } else {
                        self.dropped += 1;
                    }
                }
            }
        }
        before
    }

    /// The retained alert journal, in edge order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Edges lost to the journal bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Currently firing (open, unresolved) alerts.
    pub fn open_alerts(&self) -> u64 {
        self.open
    }

    /// Total edges ever emitted (including dropped).
    pub fn total_edges(&self) -> u64 {
        self.seq
    }

    /// The configured rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// FNV-1a over the rule set, every journal edge in order, the drop
    /// counter and the live window state.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for rule in &self.rules {
            rule.fold(&mut h);
        }
        for e in &self.events {
            h.write_u64(e.seq);
            h.write_u64(e.at.as_millis());
            h.write_bytes(e.rule.as_bytes());
            e.zone.fold(&mut h);
            h.write_u8(match e.edge {
                AlertEdge::Open => 1,
                AlertEdge::Resolve => 0,
            });
            h.write_f64(e.value);
            h.write_f64(e.threshold);
        }
        h.write_u64(self.dropped);
        h.write_u64(self.open);
        for s in &self.states {
            h.write_u64(u64::from(s.consecutive));
            h.write_u8(u8::from(s.active));
            if let Some(w) = &s.window {
                w.fold(&mut h);
            }
        }
        h.finish()
    }
}

/// Shared consecutive-cycle hold logic for the three threshold rules.
fn hold(
    consecutive: &mut u32,
    breaching: bool,
    hold_cycles: u32,
    value: f64,
    threshold: f64,
) -> (bool, f64, f64) {
    if breaching {
        *consecutive = consecutive.saturating_add(1);
    } else {
        *consecutive = 0;
    }
    (*consecutive >= hold_cycles.max(1), value, threshold)
}

fn zone_stats(tree: &RollupTree, zone: ZoneId) -> &ZoneStats {
    match zone {
        ZoneId::Rack(r) => &tree.racks()[r as usize],
        ZoneId::Row(r) => &tree.rows()[r as usize],
        ZoneId::Facility => tree.facility(),
    }
}

/// Renders the alert journal as a fixed-width, human-readable timeline
/// (one line per edge) — the format of the golden `ALERTS` fixture and
/// the README sample.
pub fn render_alerts(events: &[AlertEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let secs = e.at.as_millis() as f64 / 1000.0;
        let edge = match e.edge {
            AlertEdge::Open => "OPEN   ",
            AlertEdge::Resolve => "RESOLVE",
        };
        let _ = writeln!(
            out,
            "{secs:>9.1}s {edge} {:<18} {:<10} value={:.3} threshold={:.3}",
            e.rule,
            e.zone.label(),
            e.value,
            e.threshold
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::{CycleObservation, ZoneMap};

    fn single_zone_tree() -> RollupTree {
        RollupTree::new(ZoneMap::single_rack())
    }

    fn feed(tree: &mut RollupTree, state: ZoneState, power: f64, budget: f64, coverage: f64) {
        tree.observe_cycle(&CycleObservation {
            rack_state: &[state],
            rack_power_w: &[power],
            rack_budget_w: &[budget],
            rack_coverage: &[coverage],
            facility_state: state,
            facility_power_w: power,
            facility_budget_w: budget,
            facility_coverage: coverage,
        });
    }

    fn burn_engine(short: u32, long: u32, max_fraction: f64) -> SloEngine {
        SloEngine::new(
            vec![SloRule::DwellBurnRate {
                name: "red-dwell-burn",
                min_state: ZoneState::Red,
                short_cycles: short,
                long_cycles: long,
                max_fraction,
            }],
            1,
            1,
        )
    }

    #[test]
    fn burn_rate_fires_exactly_at_threshold() {
        // 4-cycle short window, threshold 0.5: two bad of four is
        // *exactly* at the threshold and must fire (>=, not >).
        let mut tree = single_zone_tree();
        let mut engine = burn_engine(4, 4, 0.5);
        for state in [
            ZoneState::Green,
            ZoneState::Green,
            ZoneState::Red,
            ZoneState::Red,
        ] {
            feed(&mut tree, state, 100.0, 120.0, 1.0);
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
        }
        let opens: Vec<_> = engine
            .events()
            .iter()
            .filter(|e| e.edge == AlertEdge::Open)
            .collect();
        assert!(
            !opens.is_empty(),
            "2/4 bad at threshold 0.5 must fire on the >= boundary"
        );
        assert_eq!(opens[0].value, 0.5);
        // The window must actually drain below the threshold: after one
        // Green it still holds [G,R,R,G] = 0.5. Three Greens bring the
        // short window to 1/4 and resolve the alert.
        for _ in 0..3 {
            feed(&mut tree, ZoneState::Green, 100.0, 120.0, 1.0);
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
        }
        assert_eq!(engine.open_alerts(), 0);
        assert!(engine.events().iter().any(|e| e.edge == AlertEdge::Resolve));
    }

    #[test]
    fn burn_rate_window_shorter_than_history_uses_observed_cycles() {
        // Long window of 100 cycles, but only 3 observed, all Red: the
        // fraction is 3/3 over the observed history, so it fires long
        // before the window fills.
        let mut tree = single_zone_tree();
        let mut engine = burn_engine(2, 100, 1.0);
        for _ in 0..3 {
            feed(&mut tree, ZoneState::Red, 130.0, 120.0, 1.0);
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
        }
        assert!(
            engine.open_alerts() >= 1,
            "all-Red history must fire even before the long window fills"
        );
    }

    #[test]
    fn zero_traffic_window_does_not_fire() {
        // A tree that never observed a cycle (zero traffic) must not
        // fire or divide by zero, whether the engine is evaluated
        // against it or never evaluated at all.
        let tree = single_zone_tree();
        let mut engine = burn_engine(4, 8, 0.25);
        engine.evaluate(SimTime::from_secs(1), &tree);
        assert_eq!(engine.open_alerts(), 0);
        assert_eq!(engine.events().len(), 0);
        assert_eq!(engine.dropped(), 0);
        // Never-evaluated engines have a stable fingerprint too.
        let idle = burn_engine(4, 8, 0.25);
        assert_eq!(idle.fingerprint(), burn_engine(4, 8, 0.25).fingerprint());
    }

    #[test]
    fn cap_overshoot_needs_magnitude_and_duration() {
        let mut tree = single_zone_tree();
        let mut engine = SloEngine::new(
            vec![SloRule::CapOvershoot {
                name: "cap-overshoot",
                margin_fraction: 0.02,
                hold_cycles: 3,
            }],
            1,
            1,
        );
        // Overshoot below the margin: never fires.
        for _ in 0..5 {
            feed(&mut tree, ZoneState::Yellow, 121.0, 120.0, 1.0);
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
        }
        assert_eq!(engine.open_alerts(), 0);
        // Two big cycles: duration not met. Third: fires — in all
        // three coincident zones of the single-rack tree.
        for i in 0..3 {
            feed(&mut tree, ZoneState::Red, 130.0, 120.0, 1.0);
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
            let expect = if i == 2 { 3 } else { 0 };
            assert_eq!(engine.open_alerts(), expect, "cycle {i}");
        }
        let open = engine.events().last().unwrap();
        assert_eq!(open.rule, "cap-overshoot");
        assert!((open.value - 10.0).abs() < 1e-9, "overshoot magnitude");
    }

    #[test]
    fn starvation_and_coverage_rules_fire_on_sustained_breach() {
        let map = ZoneMap::new(vec![0, 0]);
        let mut tree = RollupTree::new(map);
        let mut engine = SloEngine::new(
            vec![
                SloRule::CoverageFloor {
                    name: "coverage-floor",
                    floor: 0.6,
                    hold_cycles: 2,
                },
                SloRule::RackStarvation {
                    name: "rack-starvation",
                    floor_fraction: 0.25,
                    hold_cycles: 2,
                },
            ],
            2,
            1,
        );
        // Rack 1 gets 10 W of a 400 W facility budget (fair share 200,
        // floor 50) and facility coverage collapses to 0.3.
        for _ in 0..3 {
            tree.observe_cycle(&CycleObservation {
                rack_state: &[ZoneState::Green, ZoneState::Red],
                rack_power_w: &[200.0, 30.0],
                rack_budget_w: &[390.0, 10.0],
                rack_coverage: &[1.0, 0.3],
                facility_state: ZoneState::Red,
                facility_power_w: 230.0,
                facility_budget_w: 400.0,
                facility_coverage: 0.3,
            });
            engine.evaluate(SimTime::from_secs(tree.facility().cycles), &tree);
        }
        let rules_open: Vec<_> = engine
            .events()
            .iter()
            .filter(|e| e.edge == AlertEdge::Open)
            .map(|e| (e.rule, e.zone))
            .collect();
        assert!(rules_open.contains(&("coverage-floor", ZoneId::Facility)));
        assert!(rules_open.contains(&("rack-starvation", ZoneId::Rack(1))));
        assert!(
            !rules_open.contains(&("rack-starvation", ZoneId::Rack(0))),
            "rack 0 holds nearly the whole budget"
        );
    }

    #[test]
    fn journal_is_bounded_and_fingerprint_replayable() {
        let run = || {
            let mut tree = single_zone_tree();
            let mut engine = burn_engine(1, 1, 0.5);
            // Alternate Red/Green: every cycle flips the rule, two
            // edges per flip pair.
            for i in 0..40u64 {
                let s = if i % 2 == 0 {
                    ZoneState::Red
                } else {
                    ZoneState::Green
                };
                feed(&mut tree, s, 100.0, 120.0, 1.0);
                engine.evaluate(SimTime::from_secs(i), &tree);
            }
            engine
        };
        let (a, b) = (run(), run());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.total_edges() >= 40, "flip-flop must emit many edges");
        let text = render_alerts(a.events());
        assert!(text.contains("OPEN"));
        assert!(text.contains("RESOLVE"));
        assert!(text.contains("red-dwell-burn"));
    }
}
