//! CI helper: schema-check a JSONL trace stream produced by `--trace-out`.
//!
//! Usage: `validate_trace <file.jsonl>`. Exits 0 and prints a one-line
//! summary on success; exits 1 with the first schema violation otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ppc_obs::validate_jsonl(&text) {
        Ok(summary) => {
            println!(
                "{path}: ok ({} meta, {} spans, {} metrics)",
                summary.meta_lines, summary.span_lines, summary.metric_lines
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
