//! CI helper: schema-check a health JSONL stream produced by
//! `--health-out`.
//!
//! Usage: `validate_health <file.jsonl>`. Exits 0 and prints a one-line
//! summary on success; exits 1 with the first schema violation
//! otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_health <health.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_health: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ppc_obs::validate_health(&text) {
        Ok(summary) => {
            println!(
                "{path}: ok ({} meta, {} zones, {} alerts)",
                summary.meta_lines, summary.zone_lines, summary.alert_lines
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_health: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
