//! The per-simulation bundle of observability state.
//!
//! [`ObsHub`] packages the span recorder, metrics registry, flight
//! recorder and self-profiler that one simulation owns, so the cluster
//! layer threads a single `&mut` through its stages instead of four.
//! The hub also carries the end-of-run summary ([`ObsReport`]) embedded
//! into `ExperimentOutcome`.

use crate::flight::{FlightRecorder, FlightSnapshot};
use crate::metrics::{MetricDump, MetricsRegistry};
use crate::profile::StageProfiler;
use crate::rollup::{CycleObservation, RollupTree, ZoneMap, ZoneState};
use crate::sketch::{QuantileSketch, SketchSummary};
use crate::slo::{default_rules, AlertEvent, SloEngine};
use crate::span::SpanRecorder;
use ppc_simkit::hash::Fnv1a;
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// Default retained completed spans (≈ 500 control cycles of an 8-stage
/// tree — ample for flight-recorder windows and Chrome-trace exports).
///
/// Deliberately sized so the ring (~112 B/record) stays cache-resident:
/// the fingerprint covers *every* span ever closed regardless of
/// retention, and a multi-megabyte ring measurably slowed the managed
/// tick by streaming every close through cold cache lines.
pub const DEFAULT_SPAN_CAPACITY: usize = 4_096;
/// Default flight-recorder snapshot bound.
pub const DEFAULT_FLIGHT_SNAPSHOTS: usize = 8;
/// Default spans captured per flight snapshot.
pub const DEFAULT_FLIGHT_WINDOW: usize = 64;

/// One simulation's observability state. See the module docs.
#[derive(Debug, Clone)]
pub struct ObsHub {
    /// Control-cycle span tree.
    pub spans: SpanRecorder,
    /// Deterministic instruments.
    pub metrics: MetricsRegistry,
    /// Incident snapshots.
    pub flight: FlightRecorder,
    /// Wall-clock self-cost (never fingerprinted).
    pub profile: StageProfiler,
}

impl ObsHub {
    /// A hub with the default capacities.
    pub fn new() -> Self {
        ObsHub {
            spans: SpanRecorder::new(DEFAULT_SPAN_CAPACITY),
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::new(DEFAULT_FLIGHT_SNAPSHOTS, DEFAULT_FLIGHT_WINDOW),
            profile: StageProfiler::new(),
        }
    }

    /// Combined end-of-run summary for serialized reports.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            span_fingerprint: self.spans.fingerprint(),
            metrics_fingerprint: self.metrics.fingerprint(),
            spans_closed: self.spans.closed(),
            spans_dropped: self.spans.dropped(),
            metrics: self.metrics.dump(),
            flight: self.flight.snapshots().to_vec(),
            flight_suppressed: self.flight.suppressed(),
        }
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable end-of-run observability summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// FNV-1a over every closed span (see `SpanRecorder::fingerprint`).
    pub span_fingerprint: u64,
    /// FNV-1a over the metrics registry.
    pub metrics_fingerprint: u64,
    /// Spans closed over the run.
    pub spans_closed: u64,
    /// Spans evicted by the bounded ring.
    pub spans_dropped: u64,
    /// Final instrument values, in name order.
    pub metrics: Vec<MetricDump>,
    /// Flight-recorder snapshots, in trigger order.
    pub flight: Vec<FlightSnapshot>,
    /// Flight triggers dropped because the recorder was full.
    pub flight_suppressed: u64,
}

/// Ticks between fleet node-power sketch samples. Sketching every node
/// every tick would be O(nodes) on the hot path; sampling every Nth
/// tick keeps the health plane inside its ≤10% overhead budget while
/// the per-rack/per-zone rollups still run every cycle. The cadence is
/// keyed on the deterministic tick index, so it is identical across
/// pool widths and eval modes.
pub const NODE_SKETCH_PERIOD: u64 = 64;

/// Deterministic work counts of one control cycle, used to *model*
/// per-stage control-plane latency. Wall-clock timing can never reach a
/// fingerprint (it lives in [`crate::profile`]), so the stage latency
/// distributions are a fixed cost model over these counts — same
/// shape, zero nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageWork {
    /// Node observations ingested this cycle.
    pub samples: u64,
    /// Capping commands issued this cycle.
    pub commands: u64,
    /// Rack shards evaluated this cycle.
    pub racks: u64,
}

/// Modeled stage names, in fold order.
const STAGE_NAMES: [&str; 4] = ["sample", "classify", "actuate", "delegate"];

/// Modeled per-stage latency in microseconds (fixed coefficients ×
/// deterministic work counts; see [`StageWork`]).
fn stage_model_us(stage: usize, work: &StageWork) -> f64 {
    match stage {
        0 => 0.2 + 0.010 * work.samples as f64,
        1 => 0.5 + 0.002 * work.samples as f64,
        2 => 0.3 + 0.050 * work.commands as f64,
        _ => 0.2 + 0.020 * work.racks as f64,
    }
}

/// The three health-plane fingerprints the determinism gate pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthFingerprints {
    /// [`RollupTree::fingerprint`].
    pub rollup: u64,
    /// Combined node-power + per-stage sketch fingerprints.
    pub sketch: u64,
    /// [`SloEngine::fingerprint`].
    pub alerts: u64,
}

/// The fleet health plane: hierarchical rollups, quantile sketches and
/// SLO burn-rate alerting, bundled per simulation. Cloning the plane
/// clones its full state, so what-if snapshots carry health history and
/// branched runs stay bit-identical to fresh ones.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPlane {
    enabled: bool,
    rollup: RollupTree,
    slo: SloEngine,
    node_power: QuantileSketch,
    stages: [QuantileSketch; STAGE_NAMES.len()],
}

impl HealthPlane {
    /// A health plane over the given topology projection, with the
    /// default SLO rule set.
    pub fn new(map: ZoneMap) -> Self {
        let slo = SloEngine::new(default_rules(), map.racks(), map.rows());
        HealthPlane {
            enabled: true,
            rollup: RollupTree::new(map),
            slo,
            node_power: QuantileSketch::new(),
            stages: [
                QuantileSketch::new(),
                QuantileSketch::new(),
                QuantileSketch::new(),
                QuantileSketch::new(),
            ],
        }
    }

    /// Turns observation on or off (bench overhead measurement). A
    /// disabled plane ignores every observe call and keeps its state
    /// frozen.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the plane is observing.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds one control cycle into the rollup tree and stage sketches,
    /// then evaluates the SLO rules. Returns the alert-journal length
    /// *before* evaluation; new edges are `alerts()[returned..]`.
    pub fn observe_cycle(
        &mut self,
        now: SimTime,
        obs: &CycleObservation<'_>,
        work: &StageWork,
    ) -> usize {
        if !self.enabled {
            return self.slo.events().len();
        }
        self.rollup.observe_cycle(obs);
        for (i, sketch) in self.stages.iter_mut().enumerate() {
            sketch.observe(stage_model_us(i, work));
        }
        self.slo.evaluate(now, &self.rollup)
    }

    /// Whether the fleet node-power sketch wants a sample this tick.
    pub fn wants_node_sample(&self, tick: u64) -> bool {
        self.enabled && tick.is_multiple_of(NODE_SKETCH_PERIOD)
    }

    /// Serially observes every node's power (flat path; index order).
    pub fn observe_node_power(&mut self, power_w: &[f64]) {
        if self.enabled {
            self.node_power.observe_slice(power_w);
        }
    }

    /// Merges a per-shard node-power sketch built in the fan-out
    /// (called serially post-join, in rack order; sketch merge is
    /// exactly associative, so this equals serial observation).
    pub fn merge_node_shard(&mut self, shard: &QuantileSketch) {
        if self.enabled {
            self.node_power.merge(shard);
        }
    }

    /// The rollup tree.
    pub fn rollup(&self) -> &RollupTree {
        &self.rollup
    }

    /// The SLO engine.
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The fleet node-power sketch.
    pub fn node_power(&self) -> &QuantileSketch {
        &self.node_power
    }

    /// Modeled per-stage latency sketches, `(stage, sketch)` pairs in
    /// fold order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &QuantileSketch)> {
        STAGE_NAMES.iter().copied().zip(self.stages.iter())
    }

    /// The alert journal.
    pub fn alerts(&self) -> &[AlertEvent] {
        self.slo.events()
    }

    /// The three gate fingerprints (rollup / sketches / alerts).
    pub fn fingerprints(&self) -> HealthFingerprints {
        let mut h = Fnv1a::new();
        h.write_u64(self.node_power.fingerprint());
        for s in &self.stages {
            h.write_u64(s.fingerprint());
        }
        HealthFingerprints {
            rollup: self.rollup.fingerprint(),
            sketch: h.finish(),
            alerts: self.slo.fingerprint(),
        }
    }

    /// The serializable end-of-run summary.
    pub fn report(&self) -> HealthReport {
        let fp = self.fingerprints();
        let f = self.rollup.facility();
        HealthReport {
            rollup_fingerprint: fp.rollup,
            sketch_fingerprint: fp.sketch,
            alert_fingerprint: fp.alerts,
            cycles: f.cycles,
            racks: self.rollup.racks().len() as u64,
            rows: self.rollup.rows().len() as u64,
            alerts_open: self.slo.open_alerts(),
            alert_edges: self.slo.total_edges(),
            alerts_dropped: self.slo.dropped(),
            red_dwell_fraction: f.dwell_fraction_at_least(ZoneState::Red),
            yellow_dwell_fraction: f.dwell_fraction_at_least(ZoneState::Yellow),
            min_coverage: f.min_coverage,
            min_headroom_w: finite_or_zero(f.min_headroom_w),
            peak_power_w: f.peak_power_w,
            facility_power: f.power_sketch.summary(),
            node_power: self.node_power.summary(),
        }
    }
}

/// JSON cannot carry infinities; empty-run sentinels render as 0.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Serializable end-of-run health summary embedded in
/// `ExperimentOutcome`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// FNV-1a over the rollup tree.
    pub rollup_fingerprint: u64,
    /// FNV-1a over the node-power + stage sketches.
    pub sketch_fingerprint: u64,
    /// FNV-1a over the SLO engine (rules, journal, window state).
    pub alert_fingerprint: u64,
    /// Control cycles folded into the facility zone.
    pub cycles: u64,
    /// Rack zones.
    pub racks: u64,
    /// Row zones.
    pub rows: u64,
    /// Alerts still firing at end of run.
    pub alerts_open: u64,
    /// Open/resolve edges ever emitted.
    pub alert_edges: u64,
    /// Edges lost to the journal bound.
    pub alerts_dropped: u64,
    /// Facility cycles spent Red, as a fraction.
    pub red_dwell_fraction: f64,
    /// Facility cycles spent Yellow or Red, as a fraction.
    pub yellow_dwell_fraction: f64,
    /// Worst facility collector coverage seen.
    pub min_coverage: f64,
    /// Worst facility headroom seen (W; 0 when no cycles ran).
    pub min_headroom_w: f64,
    /// Facility peak power (W).
    pub peak_power_w: f64,
    /// Facility per-cycle power distribution.
    pub facility_power: SketchSummary,
    /// Sampled fleet node-power distribution.
    pub node_power: SketchSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    #[test]
    fn report_reflects_hub_state() {
        let mut hub = ObsHub::new();
        hub.spans.open("cycle", SimTime::from_secs(1));
        hub.spans.attr("state", AttrValue::Str("red"));
        hub.spans.close(SimTime::from_secs(1));
        let c = hub.metrics.counter("red_entries");
        hub.metrics.inc(c, 1);
        hub.flight
            .trigger(SimTime::from_secs(1), "red-entry", &hub.spans, &hub.metrics);
        let report = hub.report();
        assert_eq!(report.spans_closed, 1);
        assert_eq!(report.span_fingerprint, hub.spans.fingerprint());
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(report.flight.len(), 1);
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn health_plane_observes_and_reports() {
        let mut plane = HealthPlane::new(ZoneMap::single_rack());
        let work = StageWork {
            samples: 8,
            commands: 2,
            racks: 1,
        };
        for i in 0..5u64 {
            let state = if i >= 2 {
                ZoneState::Red
            } else {
                ZoneState::Green
            };
            plane.observe_cycle(
                SimTime::from_secs(i),
                &CycleObservation {
                    rack_state: &[state],
                    rack_power_w: &[100.0 + i as f64],
                    rack_budget_w: &[110.0],
                    rack_coverage: &[1.0],
                    facility_state: state,
                    facility_power_w: 100.0 + i as f64,
                    facility_budget_w: 110.0,
                    facility_coverage: 1.0,
                },
                &work,
            );
        }
        assert!(plane.wants_node_sample(0));
        assert!(!plane.wants_node_sample(1));
        plane.observe_node_power(&[12.0, 14.0, 0.0]);
        let report = plane.report();
        assert_eq!(report.cycles, 5);
        assert_eq!(report.node_power.count, 3);
        assert!((report.red_dwell_fraction - 0.6).abs() < 1e-12);
        assert_eq!(report.facility_power.count, 5);
        let json = serde_json::to_string(&report).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn disabled_plane_freezes_every_fingerprint() {
        let mut plane = HealthPlane::new(ZoneMap::single_rack());
        plane.set_enabled(false);
        let before = plane.fingerprints();
        plane.observe_cycle(
            SimTime::from_secs(1),
            &CycleObservation {
                rack_state: &[ZoneState::Red],
                rack_power_w: &[100.0],
                rack_budget_w: &[90.0],
                rack_coverage: &[0.2],
                facility_state: ZoneState::Red,
                facility_power_w: 100.0,
                facility_budget_w: 90.0,
                facility_coverage: 0.2,
            },
            &StageWork::default(),
        );
        plane.observe_node_power(&[50.0]);
        assert!(!plane.wants_node_sample(0));
        assert_eq!(plane.fingerprints(), before);
    }

    #[test]
    fn shard_merge_matches_serial_node_observation() {
        let powers: Vec<f64> = (0..256u32).map(|i| 150.0 + f64::from(i % 17)).collect();
        let mut serial = HealthPlane::new(ZoneMap::single_rack());
        serial.observe_node_power(&powers);
        let mut sharded = HealthPlane::new(ZoneMap::single_rack());
        for chunk in powers.chunks(37) {
            let mut shard = QuantileSketch::new();
            shard.observe_slice(chunk);
            sharded.merge_node_shard(&shard);
        }
        assert_eq!(serial.fingerprints(), sharded.fingerprints());
    }
}
