//! The per-simulation bundle of observability state.
//!
//! [`ObsHub`] packages the span recorder, metrics registry, flight
//! recorder and self-profiler that one simulation owns, so the cluster
//! layer threads a single `&mut` through its stages instead of four.
//! The hub also carries the end-of-run summary ([`ObsReport`]) embedded
//! into `ExperimentOutcome`.

use crate::flight::{FlightRecorder, FlightSnapshot};
use crate::metrics::{MetricDump, MetricsRegistry};
use crate::profile::StageProfiler;
use crate::span::SpanRecorder;
use serde::{Deserialize, Serialize};

/// Default retained completed spans (≈ 500 control cycles of an 8-stage
/// tree — ample for flight-recorder windows and Chrome-trace exports).
///
/// Deliberately sized so the ring (~112 B/record) stays cache-resident:
/// the fingerprint covers *every* span ever closed regardless of
/// retention, and a multi-megabyte ring measurably slowed the managed
/// tick by streaming every close through cold cache lines.
pub const DEFAULT_SPAN_CAPACITY: usize = 4_096;
/// Default flight-recorder snapshot bound.
pub const DEFAULT_FLIGHT_SNAPSHOTS: usize = 8;
/// Default spans captured per flight snapshot.
pub const DEFAULT_FLIGHT_WINDOW: usize = 64;

/// One simulation's observability state. See the module docs.
#[derive(Debug, Clone)]
pub struct ObsHub {
    /// Control-cycle span tree.
    pub spans: SpanRecorder,
    /// Deterministic instruments.
    pub metrics: MetricsRegistry,
    /// Incident snapshots.
    pub flight: FlightRecorder,
    /// Wall-clock self-cost (never fingerprinted).
    pub profile: StageProfiler,
}

impl ObsHub {
    /// A hub with the default capacities.
    pub fn new() -> Self {
        ObsHub {
            spans: SpanRecorder::new(DEFAULT_SPAN_CAPACITY),
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::new(DEFAULT_FLIGHT_SNAPSHOTS, DEFAULT_FLIGHT_WINDOW),
            profile: StageProfiler::new(),
        }
    }

    /// Combined end-of-run summary for serialized reports.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            span_fingerprint: self.spans.fingerprint(),
            metrics_fingerprint: self.metrics.fingerprint(),
            spans_closed: self.spans.closed(),
            spans_dropped: self.spans.dropped(),
            metrics: self.metrics.dump(),
            flight: self.flight.snapshots().to_vec(),
            flight_suppressed: self.flight.suppressed(),
        }
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable end-of-run observability summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// FNV-1a over every closed span (see `SpanRecorder::fingerprint`).
    pub span_fingerprint: u64,
    /// FNV-1a over the metrics registry.
    pub metrics_fingerprint: u64,
    /// Spans closed over the run.
    pub spans_closed: u64,
    /// Spans evicted by the bounded ring.
    pub spans_dropped: u64,
    /// Final instrument values, in name order.
    pub metrics: Vec<MetricDump>,
    /// Flight-recorder snapshots, in trigger order.
    pub flight: Vec<FlightSnapshot>,
    /// Flight triggers dropped because the recorder was full.
    pub flight_suppressed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;
    use ppc_simkit::SimTime;

    #[test]
    fn report_reflects_hub_state() {
        let mut hub = ObsHub::new();
        hub.spans.open("cycle", SimTime::from_secs(1));
        hub.spans.attr("state", AttrValue::Str("red"));
        hub.spans.close(SimTime::from_secs(1));
        let c = hub.metrics.counter("red_entries");
        hub.metrics.inc(c, 1);
        hub.flight
            .trigger(SimTime::from_secs(1), "red-entry", &hub.spans, &hub.metrics);
        let report = hub.report();
        assert_eq!(report.spans_closed, 1);
        assert_eq!(report.span_fingerprint, hub.spans.fingerprint());
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(report.flight.len(), 1);
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
