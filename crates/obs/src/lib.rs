//! # ppc-obs — deterministic observability for the control stack
//!
//! The paper's control loop (sample → estimate → classify Green/Yellow/
//! Red → select `A_target` → actuate) is exactly the kind of closed loop
//! operators must introspect live at scale. This crate gives the
//! simulator that window while preserving its central invariant:
//! everything recorded is a pure function of the experiment seed, so
//! observability itself is regression-tested for bit-determinism across
//! worker-pool widths.
//!
//! * [`span`] — a zero-alloc-on-hot-path span recorder keyed by sim
//!   time; the cluster layer opens a root span per control cycle and a
//!   child per stage, with typed attributes.
//! * [`metrics`] — a `BTreeMap`-ordered registry of counters, gauges and
//!   fixed-bucket histograms with O(1) handle-based updates.
//! * [`export`] — JSONL, Chrome `trace_event` (Perfetto) and Prometheus
//!   text exporters, plus the JSONL schema validator CI runs.
//! * [`flight`] — a bounded black-box recorder snapshotting the last N
//!   spans + registry on Red-state entry or fault activation.
//! * [`hub`] — the per-simulation bundle ([`ObsHub`]), the serializable
//!   end-of-run [`ObsReport`], and the fleet [`HealthPlane`] with its
//!   [`HealthReport`].
//! * [`rollup`] — the facility → row → rack health rollup tree
//!   (dwell, power, headroom, coverage per zone; O(racks) memory).
//! * [`sketch`] — the mergeable integer-bucketed quantile sketch whose
//!   per-shard merge is bit-identical to serial observation.
//! * [`slo`] — declarative SLO rules, dual-window burn-rate evaluation
//!   and the deterministic alert journal.
//! * [`timeseries`] — fixed-memory ring series with power-of-two
//!   downsampling, backing per-zone power history.
//! * [`profile`] — wall-clock self-cost measurement; the one module
//!   exempt from the no-wall-clock rule, and never fingerprinted.
//!
//! Span-tree, registry, rollup, sketch and alert FNV-1a fingerprints
//! join `Journal::fingerprint` in CI's determinism gate.

pub mod export;
pub mod flight;
pub mod hub;
pub mod metrics;
pub mod profile;
pub mod rollup;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use export::{
    chrome_trace, health_jsonl, jsonl, prometheus, prometheus_health, validate_health,
    validate_jsonl, HealthJsonlSummary, JsonlSummary,
};
pub use flight::{FlightRecorder, FlightSnapshot};
pub use hub::{
    HealthFingerprints, HealthPlane, HealthReport, ObsHub, ObsReport, StageWork, NODE_SKETCH_PERIOD,
};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramDump, HistogramHandle, MetricDump, MetricValue,
    MetricsRegistry,
};
pub use profile::{StageCost, StageProfiler};
pub use rollup::{CycleObservation, RollupTree, ZoneMap, ZoneState, ZoneStats};
pub use sketch::{QuantileSketch, SketchSummary, RELATIVE_ERROR_BOUND};
pub use slo::{default_rules, render_alerts, AlertEdge, AlertEvent, SloEngine, SloRule, ZoneId};
pub use span::{AttrValue, SpanDump, SpanId, SpanRecord, SpanRecorder};
pub use timeseries::RingSeries;
