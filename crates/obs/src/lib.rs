//! # ppc-obs — deterministic observability for the control stack
//!
//! The paper's control loop (sample → estimate → classify Green/Yellow/
//! Red → select `A_target` → actuate) is exactly the kind of closed loop
//! operators must introspect live at scale. This crate gives the
//! simulator that window while preserving its central invariant:
//! everything recorded is a pure function of the experiment seed, so
//! observability itself is regression-tested for bit-determinism across
//! worker-pool widths.
//!
//! * [`span`] — a zero-alloc-on-hot-path span recorder keyed by sim
//!   time; the cluster layer opens a root span per control cycle and a
//!   child per stage, with typed attributes.
//! * [`metrics`] — a `BTreeMap`-ordered registry of counters, gauges and
//!   fixed-bucket histograms with O(1) handle-based updates.
//! * [`export`] — JSONL, Chrome `trace_event` (Perfetto) and Prometheus
//!   text exporters, plus the JSONL schema validator CI runs.
//! * [`flight`] — a bounded black-box recorder snapshotting the last N
//!   spans + registry on Red-state entry or fault activation.
//! * [`hub`] — the per-simulation bundle ([`ObsHub`]) and the
//!   serializable end-of-run [`ObsReport`].
//! * [`profile`] — wall-clock self-cost measurement; the one module
//!   exempt from the no-wall-clock rule, and never fingerprinted.
//!
//! Span-tree and registry FNV-1a fingerprints join `Journal::fingerprint`
//! in CI's determinism gate.

pub mod export;
pub mod flight;
pub mod hub;
pub mod metrics;
pub mod profile;
pub mod span;

pub use export::{chrome_trace, jsonl, prometheus, validate_jsonl, JsonlSummary};
pub use flight::{FlightRecorder, FlightSnapshot};
pub use hub::{ObsHub, ObsReport};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramDump, HistogramHandle, MetricDump, MetricValue,
    MetricsRegistry,
};
pub use profile::{StageCost, StageProfiler};
pub use span::{AttrValue, SpanDump, SpanId, SpanRecord, SpanRecorder};
