//! Fixed-memory ring series with power-of-two downsampling.
//!
//! The rollup tree retains a power history per zone. Keeping every tick
//! would be O(ticks) per zone; instead [`RingSeries`] holds at most a
//! fixed number of samples and, whenever the buffer fills, halves it by
//! averaging adjacent pairs and doubling the *stride* (raw pushes per
//! retained sample). Memory is therefore constant per zone while the
//! series always spans the whole run, at geometrically coarsening
//! resolution — the classic power-of-two downsampling scheme.
//!
//! Everything is a pure function of the pushed values in push order
//! (fixed-order f64 averaging, no wall clock, no allocation churn), so
//! the series fingerprint joins the determinism gate.

use ppc_simkit::hash::Fnv1a;

/// Bounded, self-downsampling series of f64 samples. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSeries {
    /// Retention bound (power of two ≥ 2).
    cap: usize,
    /// Raw pushes folded into one retained sample.
    stride: u64,
    /// Retained samples, oldest first.
    samples: Vec<f64>,
    /// Partial-bucket accumulator (sum of pending raw pushes).
    acc: f64,
    /// Raw pushes pending in `acc`.
    acc_n: u64,
    /// Total raw pushes ever.
    pushed: u64,
}

impl RingSeries {
    /// A series retaining at most `cap` samples (rounded up to a power
    /// of two, minimum 2).
    pub fn new(cap: usize) -> Self {
        RingSeries {
            cap: cap.next_power_of_two().max(2),
            stride: 1,
            samples: Vec::new(),
            acc: 0.0,
            acc_n: 0,
            pushed: 0,
        }
    }

    /// Pushes one raw sample.
    pub fn push(&mut self, v: f64) {
        self.pushed += 1;
        self.acc += v;
        self.acc_n += 1;
        if self.acc_n == self.stride {
            self.samples.push(self.acc / self.stride as f64);
            self.acc = 0.0;
            self.acc_n = 0;
            if self.samples.len() == self.cap {
                self.compress();
            }
        }
    }

    /// Halves the buffer by averaging adjacent pairs and doubles the
    /// stride. In place: the rollup tree owns one series per zone, so
    /// an allocating compress would churn O(zones) allocations every
    /// `cap` cycles.
    fn compress(&mut self) {
        let half = self.samples.len() / 2;
        for i in 0..half {
            self.samples[i] = (self.samples[2 * i] + self.samples[2 * i + 1]) / 2.0;
        }
        self.samples.truncate(half);
        self.stride *= 2;
    }

    /// Retained samples, oldest first (each the mean of [`stride`]
    /// raw pushes).
    ///
    /// [`stride`]: RingSeries::stride
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Raw pushes per retained sample.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total raw pushes ever.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// FNV-1a over the full series state (stride, push count, retained
    /// sample bits and the pending partial bucket).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.stride);
        h.write_u64(self.pushed);
        h.write_u64(self.samples.len() as u64);
        for &s in &self.samples {
            h.write_f64(s);
        }
        h.write_f64(self.acc);
        h.write_u64(self.acc_n);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_stays_bounded_while_span_grows() {
        let mut s = RingSeries::new(8);
        for i in 0..10_000u32 {
            s.push(f64::from(i));
        }
        assert!(s.samples().len() < 8);
        assert_eq!(s.pushed(), 10_000);
        // Stride must have doubled repeatedly to cover the run.
        assert!(s.stride() >= 10_000 / 8);
        assert!(s.stride().is_power_of_two());
    }

    #[test]
    fn downsampling_preserves_the_mean() {
        let mut s = RingSeries::new(4);
        for i in 0..64u32 {
            s.push(f64::from(i));
        }
        // 64 pushes through cap 4 → stride 32, two full samples.
        assert_eq!(s.stride(), 32);
        assert_eq!(s.samples(), &[15.5, 47.5]);
    }

    #[test]
    fn fingerprint_tracks_state_exactly() {
        let mut a = RingSeries::new(4);
        let mut b = RingSeries::new(4);
        for i in 0..100u32 {
            a.push(f64::from(i) * 0.5);
            b.push(f64::from(i) * 0.5);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(1.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn capacity_is_normalized() {
        assert_eq!(RingSeries::new(0).capacity(), 2);
        assert_eq!(RingSeries::new(3).capacity(), 4);
        assert_eq!(RingSeries::new(8).capacity(), 8);
    }
}
