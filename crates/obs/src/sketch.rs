//! Mergeable, integer-bucketed quantile sketch (DDSketch-style).
//!
//! The health plane needs power and latency *distributions*, not just
//! last values — and it needs them to survive the simkit fan-out: a
//! sketch built from per-rack shard sketches merged post-join must be
//! **bit-identical** to one built by observing every value serially, at
//! any worker-pool width. Floating-point accumulation cannot give that
//! (f64 addition is not associative), so everything inside the sketch is
//! integer arithmetic:
//!
//! * **Buckets** are derived from the IEEE-754 bit pattern: for a
//!   positive value the index is `to_bits() >> 45`, i.e. the exponent
//!   plus the top [`SUB_BITS`] mantissa bits — 128 geometric sub-buckets
//!   per octave. Quantiles are answered from the bucket midpoint, so the
//!   relative error is bounded by half a bucket width:
//!   `2^-(SUB_BITS+1) ≈ 0.39%`. No logarithms, no float rounding — the
//!   bucket of a value is a pure bit shift.
//! * **Counts** live in a dense `Vec<u64>` offset by the first observed
//!   bucket index, merged by per-bucket integer addition, which is
//!   exactly associative and commutative. A fleet's values span only a
//!   few octaves (~128 buckets each), so the table stays small and the
//!   hot `observe` path is a single indexed increment — the health
//!   plane sketches every node's power draw on sample ticks, so this
//!   path runs ~100k times per sample.
//! * **The sum** is fixed-point (`value × 1024`, rounded, accumulated in
//!   `i128`), so merged sums match serial sums bit-for-bit regardless of
//!   merge order.
//!
//! Merge therefore forms a commutative monoid with the empty sketch as
//! identity; the proptest suite pins all three laws on the fingerprint.

use ppc_simkit::hash::Fnv1a;
use serde::{Deserialize, Serialize};

/// Mantissa bits kept in the bucket index: 128 sub-buckets per octave.
pub const SUB_BITS: u32 = 7;
/// Shift applied to the raw f64 bit pattern to obtain the bucket index.
const INDEX_SHIFT: u32 = 52 - SUB_BITS;
/// Fixed-point scale for the deterministic sum (1/1024 of a unit).
const SUM_SCALE: f64 = 1024.0;

/// Guaranteed relative quantile error: half a geometric bucket.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << (SUB_BITS + 1)) as f64;

/// A mergeable quantile sketch over non-negative samples. See the
/// module docs for the determinism argument.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantileSketch {
    /// Bucket index of `buckets[0]`; meaningless while `buckets` is
    /// empty.
    base: u32,
    /// Dense per-bucket counts starting at `base`. The first and last
    /// entries are always non-zero (growth is exact-fit), so equal
    /// observation multisets produce identical representations and the
    /// derived `PartialEq` is semantic equality.
    buckets: Vec<u64>,
    /// Observations that were zero, negative or non-finite.
    low: u64,
    /// Total observations (including `low`).
    count: u64,
    /// Fixed-point sum of all finite observations (units of 1/1024).
    sum_q: i128,
    /// Smallest finite observation (`+inf` when empty).
    min: f64,
    /// Largest finite observation (`-inf` when empty).
    max: f64,
}

/// Bucket index of a positive finite value: exponent + top mantissa
/// bits, straight from the bit pattern.
fn bucket_of(x: f64) -> u32 {
    (x.to_bits() >> INDEX_SHIFT) as u32
}

/// Lower edge of a bucket (the smallest value mapping to it).
fn bucket_lower(index: u32) -> f64 {
    f64::from_bits(u64::from(index) << INDEX_SHIFT)
}

/// Midpoint representative of a bucket, used to answer quantiles.
fn bucket_mid(index: u32) -> f64 {
    f64::from_bits((u64::from(index) << INDEX_SHIFT) | (1u64 << (INDEX_SHIFT - 1)))
}

impl QuantileSketch {
    /// An empty sketch (the merge identity).
    pub fn new() -> Self {
        QuantileSketch {
            base: 0,
            buckets: Vec::new(),
            low: 0,
            count: 0,
            sum_q: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Positive finite values land in a
    /// geometric bucket; zero, negative and non-finite values are
    /// counted in the `low` bucket (rank 0) and excluded from min/max
    /// and the sum when non-finite.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x.is_finite() {
            self.sum_q += fixed_point(x);
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        if x > 0.0 && x.is_finite() {
            self.bump(bucket_of(x), 1);
        } else {
            self.low += 1;
        }
    }

    /// Adds `n` observations to bucket `idx`, growing the dense table
    /// exactly far enough to cover it. Growth is rare (values cluster
    /// within a few octaves); the steady-state path is one indexed add.
    #[inline]
    fn bump(&mut self, idx: u32, n: u64) {
        if self.buckets.is_empty() {
            self.base = idx;
            self.buckets.push(n);
        } else if idx < self.base {
            let grow = (self.base - idx) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = idx;
            self.buckets[0] += n;
        } else {
            let off = (idx - self.base) as usize;
            if off >= self.buckets.len() {
                self.buckets.resize(off + 1, 0);
            }
            self.buckets[off] += n;
        }
    }

    /// Occupied buckets as `(index, count)` pairs, ascending.
    fn occupied(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(move |(i, &n)| (self.base + i as u32, n))
    }

    /// Records every value of a slice, in order.
    pub fn observe_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Merges another sketch into this one. Pure integer bucket/count
    /// addition plus min/max — exactly associative and commutative, so
    /// per-shard sketches merged in rack order equal serial observation
    /// bit-for-bit.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (idx, n) in other.occupied() {
            self.bump(idx, n);
        }
        self.low += other.low;
        self.count += other.count;
        self.sum_q += other.sum_q;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Observations that fell below the positive range.
    pub fn low_count(&self) -> u64 {
        self.low
    }

    /// Smallest finite observation.
    pub fn min(&self) -> Option<f64> {
        (self.min != f64::INFINITY).then_some(self.min)
    }

    /// Largest finite observation.
    pub fn max(&self) -> Option<f64> {
        (self.max != f64::NEG_INFINITY).then_some(self.max)
    }

    /// Sum of finite observations, reconstructed from the fixed-point
    /// accumulator (deterministic across merge orders).
    pub fn sum(&self) -> f64 {
        self.sum_q as f64 / SUM_SCALE
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), answered from bucket midpoints
    /// with relative error ≤ [`RELATIVE_ERROR_BOUND`]. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target <= self.low {
            return Some(0.0);
        }
        let mut cumulative = self.low;
        for (idx, n) in self.occupied() {
            cumulative += n;
            if cumulative >= target {
                return Some(bucket_mid(idx));
            }
        }
        // Unreachable when counts are consistent; fall back to max.
        Some(self.max)
    }

    /// Occupied buckets, ascending, as `(lower_edge, upper_edge, count)`
    /// triples — the raw material for cumulative-bucket exports.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.occupied()
            .map(|(idx, n)| (bucket_lower(idx), bucket_lower(idx + 1), n))
    }

    /// A serializable five-number summary for reports.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.count,
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }

    /// FNV-1a over the full sketch state: bucket table in index order,
    /// counts, fixed-point sum, min/max bits. Equal fingerprints mean
    /// bit-equal sketches.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.count);
        h.write_u64(self.low);
        h.write_u64(self.sum_q as u64);
        h.write_u64((self.sum_q >> 64) as u64);
        h.write_f64(self.min);
        h.write_f64(self.max);
        for (idx, n) in self.occupied() {
            h.write_u64(u64::from(idx));
            h.write_u64(n);
        }
        h.finish()
    }
}

/// Fixed-point quantization of one observation (saturating).
fn fixed_point(x: f64) -> i128 {
    (x * SUM_SCALE).round() as i128
}

/// Serializable five-number sketch summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Observations folded in.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest finite observation.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_relative_error_bound() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000u32 {
            s.observe(f64::from(i) * 0.1);
        }
        for &(q, expect) in &[(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (1.0, 1000.0)] {
            let got = s.quantile(q).unwrap();
            let rel = (got - expect).abs() / expect;
            // Midpoint answer + discrete rank: allow one full bucket.
            assert!(
                rel <= 2.0 * RELATIVE_ERROR_BOUND + 1e-4,
                "q={q}: {got} vs {expect}"
            );
        }
        assert_eq!(s.count(), 10_000);
        assert_eq!(s.min(), Some(0.1));
        assert_eq!(s.max(), Some(1000.0));
        // sum_{1..=10000} i*0.1 = 5_000_500; fixed-point rounding errors
        // alternate in sign and cancel.
        assert!((s.sum() - 5_000_500.0).abs() < 1.0);
    }

    #[test]
    fn low_values_rank_at_zero() {
        let mut s = QuantileSketch::new();
        s.observe(0.0);
        s.observe(-4.0);
        s.observe(10.0);
        assert_eq!(s.low_count(), 2);
        assert_eq!(s.quantile(0.1), Some(0.0));
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 10.0).abs() / 10.0 <= RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn sharded_merge_equals_serial_observation() {
        let values: Vec<f64> = (0..997u32)
            .map(|i| f64::from(i % 113) * 3.7 + 0.5)
            .collect();
        let mut serial = QuantileSketch::new();
        serial.observe_slice(&values);
        for width in [1usize, 2, 8] {
            let chunk = values.len().div_ceil(width);
            let mut merged = QuantileSketch::new();
            for shard in values.chunks(chunk) {
                let mut s = QuantileSketch::new();
                s.observe_slice(shard);
                merged.merge(&s);
            }
            assert_eq!(merged, serial, "width {width}");
            assert_eq!(merged.fingerprint(), serial.fingerprint(), "width {width}");
        }
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut s = QuantileSketch::new();
        s.observe_slice(&[1.0, 2.0, 3.0]);
        let before = s.fingerprint();
        s.merge(&QuantileSketch::new());
        assert_eq!(s.fingerprint(), before);
        let mut e = QuantileSketch::new();
        let t = s.clone();
        e.merge(&t);
        assert_eq!(e, t);
        assert!(QuantileSketch::new().quantile(0.5).is_none());
    }

    #[test]
    fn bucket_edges_are_consistent() {
        for x in [0.001, 0.9, 1.0, 1.5, 37.2, 512.0, 1e9] {
            let idx = bucket_of(x);
            assert!(bucket_lower(idx) <= x && x < bucket_lower(idx + 1), "{x}");
            let mid = bucket_mid(idx);
            assert!((mid - x).abs() / x <= 2.0 * RELATIVE_ERROR_BOUND, "{x}");
        }
    }
}
