//! Wall-clock self-profiling of the observability machinery.
//!
//! Everything else in this crate is a pure function of the seeded
//! simulation and feeds determinism fingerprints. This module is the one
//! deliberate exception: it measures the *real* cost of recording (span
//! bookkeeping, exporter rendering) on the host, the same way
//! `telemetry`'s `CycleCostMeter` measures management cost. Its output
//! is advisory, printed or logged only — it must never be folded into
//! [`crate::span::SpanRecorder::fingerprint`] or
//! [`crate::metrics::MetricsRegistry::fingerprint`], and `ppc-lint`
//! allows wall-clock reads in this file alone within the `obs` crate.

use ppc_simkit::RunningStats;
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulates wall-clock cost per named stage.
#[derive(Debug, Clone, Default)]
pub struct StageProfiler {
    stages: BTreeMap<&'static str, RunningStats>,
}

/// An in-flight stage measurement (see [`StageProfiler::start`]).
#[derive(Debug)]
pub struct StageTimer(Instant);

/// One stage's accumulated wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Stage name.
    pub stage: &'static str,
    /// Mean cost per invocation, seconds.
    pub mean_secs: f64,
    /// Number of invocations.
    pub count: u64,
}

impl StageProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, charging its wall-clock cost to `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages
            .entry(stage)
            .or_default()
            .push(start.elapsed().as_secs_f64());
        out
    }

    /// Starts a measurement to be charged later with
    /// [`StageProfiler::stop`] — the non-closure form of
    /// [`StageProfiler::time`], for call sites where a closure would
    /// fight the borrow checker.
    pub fn start(&self) -> StageTimer {
        StageTimer(Instant::now())
    }

    /// Charges a measurement started with [`StageProfiler::start`].
    pub fn stop(&mut self, stage: &'static str, timer: StageTimer) {
        self.stages
            .entry(stage)
            .or_default()
            .push(timer.0.elapsed().as_secs_f64());
    }

    /// Per-stage costs in stage-name order.
    pub fn report(&self) -> Vec<StageCost> {
        self.stages
            .iter()
            .map(|(stage, stats)| StageCost {
                stage,
                mean_secs: stats.mean(),
                count: stats.count(),
            })
            .collect()
    }

    /// True if nothing was timed.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_stages_independently() {
        let mut p = StageProfiler::new();
        let a = p.time("record", || 21 * 2);
        assert_eq!(a, 42);
        p.time("record", || ());
        p.time("export", || ());
        let report = p.report();
        assert_eq!(report.len(), 2);
        // BTreeMap order: export before record.
        assert_eq!(report[0].stage, "export");
        assert_eq!(report[0].count, 1);
        assert_eq!(report[1].stage, "record");
        assert_eq!(report[1].count, 2);
        assert!(report.iter().all(|s| s.mean_secs >= 0.0));
    }

    #[test]
    fn start_stop_form_charges_like_time() {
        let mut p = StageProfiler::new();
        let t = p.start();
        p.stop("actuate", t);
        let report = p.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].stage, "actuate");
        assert_eq!(report[0].count, 1);
    }
}
