//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Instruments are registered once by static name and then updated
//! through copyable index handles, so hot-path updates are a single
//! `Vec` access — no string hashing, no map lookups, no allocation.
//! Export and fingerprinting walk a `BTreeMap` of names, so iteration
//! order (and therefore the rendered text and the FNV-1a hash) is
//! deterministic. Nothing here reads the wall clock: anything folded
//! into [`MetricsRegistry::fingerprint`] must be a pure function of the
//! seeded simulation, because the determinism gate compares the value
//! across worker-pool widths. Wall-clock self-profiling lives in
//! [`crate::profile`] instead, outside the fingerprint.

use ppc_simkit::hash::Fnv1a;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

#[derive(Debug, Clone, PartialEq)]
enum Instrument {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Upper bounds of the finite buckets, ascending; an implicit
        /// +inf bucket follows.
        bounds: Vec<f64>,
        /// One count per finite bucket, plus the overflow bucket.
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram { .. } => "histogram",
        }
    }
}

/// Deterministic instrument registry. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: BTreeMap<&'static str, usize>,
    instruments: Vec<Instrument>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &'static str, make: impl FnOnce() -> Instrument) -> usize {
        if let Some(&idx) = self.names.get(name) {
            let fresh = make();
            assert_eq!(
                self.instruments[idx].kind(),
                fresh.kind(),
                "instrument `{name}` re-registered with a different kind"
            );
            return idx;
        }
        let idx = self.instruments.len();
        self.instruments.push(make());
        self.names.insert(name, idx);
        idx
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&mut self, name: &'static str) -> CounterHandle {
        CounterHandle(self.register(name, || Instrument::Counter(0)))
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeHandle {
        GaugeHandle(self.register(name, || Instrument::Gauge(0.0)))
    }

    /// Registers (or retrieves) a fixed-bucket histogram with the given
    /// ascending finite bucket upper bounds (an overflow bucket is
    /// implicit).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending, or if the
    /// name is already registered with different bounds.
    pub fn histogram(&mut self, name: &'static str, bounds: &[f64]) -> HistogramHandle {
        assert!(!bounds.is_empty(), "histogram `{name}` needs bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram `{name}` bounds must be strictly ascending"
        );
        let idx = self.register(name, || Instrument::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        if let Instrument::Histogram { bounds: have, .. } = &self.instruments[idx] {
            assert_eq!(
                have.len(),
                bounds.len(),
                "histogram `{name}` re-registered with different bounds"
            );
        }
        HistogramHandle(idx)
    }

    /// Adds `n` to a counter.
    pub fn inc(&mut self, h: CounterHandle, n: u64) {
        if let Instrument::Counter(v) = &mut self.instruments[h.0] {
            *v += n;
        }
    }

    /// Sets a gauge.
    pub fn set(&mut self, h: GaugeHandle, value: f64) {
        if let Instrument::Gauge(v) = &mut self.instruments[h.0] {
            *v = value;
        }
    }

    /// Records an observation into a histogram.
    pub fn observe(&mut self, h: HistogramHandle, value: f64) {
        if let Instrument::Histogram {
            bounds,
            counts,
            sum,
            count,
        } = &mut self.instruments[h.0]
        {
            let idx = bounds.partition_point(|b| value > *b);
            counts[idx] += 1;
            *sum += value;
            *count += 1;
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        match self.instruments[h.0] {
            Instrument::Counter(v) => v,
            _ => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, h: GaugeHandle) -> f64 {
        match self.instruments[h.0] {
            Instrument::Gauge(v) => v,
            _ => 0.0,
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.instruments.is_empty()
    }

    /// Order-sensitive FNV-1a hash over every instrument in name order:
    /// name, kind, and exact value bits. Joins the journal and span-tree
    /// hashes in the determinism gate, so a single diverging count or
    /// float bit across worker widths fails CI.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (name, &idx) in &self.names {
            h.write_bytes(name.as_bytes());
            match &self.instruments[idx] {
                Instrument::Counter(v) => {
                    h.write_u8(0);
                    h.write_u64(*v);
                }
                Instrument::Gauge(v) => {
                    h.write_u8(1);
                    h.write_f64(*v);
                }
                Instrument::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    h.write_u8(2);
                    h.write_u64(bounds.len() as u64);
                    for b in bounds {
                        h.write_f64(*b);
                    }
                    for c in counts {
                        h.write_u64(*c);
                    }
                    h.write_f64(*sum);
                    h.write_u64(*count);
                }
            }
        }
        h.finish()
    }

    /// Owned snapshot of every instrument, in name order.
    pub fn dump(&self) -> Vec<MetricDump> {
        self.names
            .iter()
            .map(|(name, &idx)| {
                let value = match &self.instruments[idx] {
                    Instrument::Counter(v) => MetricValue::Counter(*v),
                    Instrument::Gauge(v) => MetricValue::Gauge(*v),
                    Instrument::Histogram {
                        bounds,
                        counts,
                        sum,
                        count,
                    } => MetricValue::Histogram(HistogramDump {
                        bounds: bounds.clone(),
                        counts: counts.clone(),
                        sum: *sum,
                        count: *count,
                    }),
                };
                MetricDump {
                    name: (*name).to_string(),
                    value,
                }
            })
            .collect()
    }
}

/// Owned snapshot of one instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDump {
    /// Instrument name.
    pub name: String,
    /// Value by kind.
    pub value: MetricValue,
}

/// Owned instrument value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(HistogramDump),
}

/// Owned histogram state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramDump {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Counts per finite bucket plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("commands_applied");
        let g = m.gauge("power_w");
        let h = m.histogram("selection_size", &[1.0, 2.0, 4.0]);
        m.inc(c, 3);
        m.set(g, 812.5);
        for v in [0.0, 1.0, 3.0, 9.0] {
            m.observe(h, v);
        }
        assert_eq!(m.counter_value(c), 3);
        assert_eq!(m.gauge_value(g), 812.5);
        let dump = m.dump();
        assert_eq!(dump.len(), 3);
        // BTreeMap order: commands_applied, power_w, selection_size.
        assert_eq!(dump[0].name, "commands_applied");
        let MetricValue::Histogram(hd) = &dump[2].value else {
            panic!("expected histogram");
        };
        // 0.0,1.0 → ≤1 bucket; 3.0 → ≤4 bucket; 9.0 → overflow.
        assert_eq!(hd.counts, vec![2, 0, 1, 1]);
        assert_eq!(hd.count, 4);
        assert_eq!(hd.sum, 13.0);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_is_rejected() {
        let mut m = MetricsRegistry::new();
        m.counter("x");
        m.gauge("x");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        let mut m = MetricsRegistry::new();
        m.histogram("h", &[2.0, 1.0]);
    }

    #[test]
    fn fingerprint_tracks_values_and_names() {
        let run = |n: u64| {
            let mut m = MetricsRegistry::new();
            let c = m.counter("a");
            m.inc(c, n);
            m.fingerprint()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
        let mut other = MetricsRegistry::new();
        let c = other.counter("b");
        other.inc(c, 1);
        assert_ne!(run(1), other.fingerprint(), "name must matter");
    }

    #[test]
    fn fingerprint_is_registration_order_independent() {
        // Name order, not registration order, drives the hash: two
        // components registering in different orders must agree.
        let mut a = MetricsRegistry::new();
        a.counter("x");
        a.gauge("y");
        let mut b = MetricsRegistry::new();
        b.gauge("y");
        b.counter("x");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn dump_round_trips() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[0.5]);
        m.observe(h, 0.2);
        let dump = m.dump();
        let json = serde_json::to_string(&dump[0]).unwrap();
        let back: MetricDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump[0]);
    }
}
