//! Flight recorder: bounded black-box snapshots at incident boundaries.
//!
//! Operators debugging a capping incident need the context *leading into*
//! it, not just the end-of-run aggregates. The [`FlightRecorder`] is
//! armed by the cluster simulation and triggered on Red-state entry and
//! on fault activation: each trigger captures the last N completed spans
//! and a full metrics-registry dump at that instant. Snapshot count is
//! bounded; excess triggers are counted, never silently ignored —
//! the same contract as the journal ring.

use crate::metrics::{MetricDump, MetricsRegistry};
use crate::span::{SpanDump, SpanRecorder};
use ppc_simkit::SimTime;
use serde::{Deserialize, Serialize};

/// One captured snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Sim time of the trigger.
    pub at_ms: u64,
    /// Why the recorder fired (e.g. `"red-entry"`, `"fault:crash n3"`).
    pub reason: String,
    /// The last spans completed before the trigger, oldest first.
    pub spans: Vec<SpanDump>,
    /// Full metrics registry at the trigger.
    pub metrics: Vec<MetricDump>,
}

/// Bounded incident snapshotter. See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    max_snapshots: usize,
    span_window: usize,
    snapshots: Vec<FlightSnapshot>,
    suppressed: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `max_snapshots` snapshots of the last
    /// `span_window` spans each.
    pub fn new(max_snapshots: usize, span_window: usize) -> Self {
        FlightRecorder {
            max_snapshots,
            span_window,
            snapshots: Vec::new(),
            suppressed: 0,
        }
    }

    /// Captures a snapshot, or counts it as suppressed once full.
    /// Returns true if the snapshot was stored.
    pub fn trigger(
        &mut self,
        at: SimTime,
        reason: impl Into<String>,
        spans: &SpanRecorder,
        metrics: &MetricsRegistry,
    ) -> bool {
        if self.snapshots.len() >= self.max_snapshots {
            self.suppressed += 1;
            return false;
        }
        self.snapshots.push(FlightSnapshot {
            at_ms: at.as_millis(),
            reason: reason.into(),
            spans: spans.dump_tail(self.span_window),
            metrics: metrics.dump(),
        });
        true
    }

    /// Stored snapshots, in trigger order.
    pub fn snapshots(&self) -> &[FlightSnapshot] {
        &self.snapshots
    }

    /// Triggers discarded because the recorder was full.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if nothing has triggered yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Consumes the recorder, yielding the stored snapshots.
    pub fn into_snapshots(self) -> Vec<FlightSnapshot> {
        self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AttrValue;

    #[test]
    fn captures_span_tail_and_metrics() {
        let mut spans = SpanRecorder::new(32);
        let mut metrics = MetricsRegistry::new();
        let c = metrics.counter("red_entries");
        for i in 0..6u64 {
            spans.open("cycle", SimTime::from_secs(i));
            spans.attr("i", AttrValue::U64(i));
            spans.close(SimTime::from_secs(i));
        }
        metrics.inc(c, 1);
        let mut fr = FlightRecorder::new(2, 3);
        assert!(fr.trigger(SimTime::from_secs(6), "red-entry", &spans, &metrics));
        assert_eq!(fr.len(), 1);
        let snap = &fr.snapshots()[0];
        assert_eq!(snap.at_ms, 6000);
        assert_eq!(snap.reason, "red-entry");
        assert_eq!(snap.spans.len(), 3, "window of 3 spans");
        assert_eq!(snap.spans.last().unwrap().start_ms, 5000);
        assert_eq!(snap.metrics.len(), 1);
    }

    #[test]
    fn bounded_with_suppression_count() {
        let spans = SpanRecorder::new(4);
        let metrics = MetricsRegistry::new();
        let mut fr = FlightRecorder::new(1, 4);
        assert!(fr.trigger(SimTime::ZERO, "a", &spans, &metrics));
        assert!(!fr.trigger(SimTime::ZERO, "b", &spans, &metrics));
        assert!(!fr.trigger(SimTime::ZERO, "c", &spans, &metrics));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.suppressed(), 2);
    }

    #[test]
    fn snapshot_serializes() {
        let spans = SpanRecorder::new(4);
        let metrics = MetricsRegistry::new();
        let mut fr = FlightRecorder::new(1, 4);
        fr.trigger(SimTime::from_secs(1), "fault:crash n0", &spans, &metrics);
        let json = serde_json::to_string(&fr.snapshots()[0]).unwrap();
        let back: FlightSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fr.snapshots()[0]);
    }
}
