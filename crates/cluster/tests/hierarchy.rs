//! Hierarchical control plane integration tests: budget conservation
//! under fault injection, orphaned-headroom reclamation after whole-rack
//! loss, and flat-equivalence of the single-rack passthrough.
//!
//! The conservation invariant is the *sequential draw-down* form the core
//! delegation primitives guarantee exactly (no float re-summation slack):
//! walking the children in order, each child's budget is non-negative and
//! never exceeds what remains of the parent's — which implies
//! Σ child ≤ parent.

use ppc_cluster::{ClusterSim, ClusterSpec};
use ppc_core::{conserves_budget, HierarchicalManager, ManagerConfig, PolicyKind, Topology};
use ppc_faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc_node::NodeId;
use ppc_simkit::{RngFactory, SimDuration};
use std::collections::BTreeSet;

const RUN_SECS: u64 = 300;

fn hier_spec(nodes: u32) -> ClusterSpec {
    let mut spec = ClusterSpec::mini(nodes);
    spec.provision_fraction = 0.60; // tight: capping and delegation engage
    spec
}

fn hier_sim(topology: Topology, faulted: bool) -> ClusterSim {
    let spec = hier_spec(topology.node_count());
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let hier = HierarchicalManager::new(config, topology, &BTreeSet::new(), spec.node_weights_w())
        .expect("valid hierarchy");
    let sim = ClusterSim::new(spec);
    let sim = if faulted {
        let rates = FaultRates {
            crash_per_node_hour: 6.0,
            reboot_mean_secs: 45.0,
            hang_per_node_hour: 6.0,
            silence_per_node_hour: 8.0,
            partition_per_hour: 10.0,
            partition_width: 4,
            ..FaultRates::default()
        };
        let schedule = FaultSchedule::generate(
            &rates,
            topology.node_count(),
            SimDuration::from_secs(RUN_SECS),
            &RngFactory::new(7),
        );
        sim.with_faults(FaultInjection::new(schedule))
    } else {
        sim
    };
    sim.with_hierarchy(hier)
}

/// Every level of the tree conserves its parent's budget, exactly.
fn assert_conserving(sim: &ClusterSim) {
    let h = sim.hierarchy().expect("hierarchical sim");
    let topology = *h.topology();
    assert!(
        conserves_budget(h.config().p_provision_w, h.row_budget_w()),
        "rows overspend the facility budget: {:?} from {}",
        h.row_budget_w(),
        h.config().p_provision_w
    );
    for row in 0..topology.rows() {
        let racks = topology.row_racks(row);
        assert!(
            conserves_budget(h.row_budget_w()[row], &h.rack_budget_w()[racks.clone()]),
            "row {row} racks overspend: {:?} from {}",
            &h.rack_budget_w()[racks],
            h.row_budget_w()[row]
        );
    }
}

#[test]
fn budget_conservation_holds_every_cycle_under_faults() {
    let topology = Topology::new(8, 2, 2).unwrap();
    let mut sim = hier_sim(topology, true);
    for _ in 0..RUN_SECS {
        sim.step();
        assert_conserving(&sim);
    }
    // The run must have exercised the control plane for the invariant
    // check to mean anything.
    let stats = sim.control_stats().expect("hierarchy attached");
    assert!(stats.cycles > 0, "no control cycles ran");
    assert!(sim.commands_applied() > 0, "no commands applied");
}

#[test]
fn whole_rack_loss_drains_its_budget_and_siblings_reclaim_it() {
    let topology = Topology::new(8, 2, 2).unwrap();
    let mut sim = hier_sim(topology, false);
    sim.run_for(SimDuration::from_secs(20));
    let h = sim.hierarchy().unwrap();
    assert!(h.rack_budget_w()[0] > 0.0, "rack 0 starts funded");

    // Rack 0 is nodes {0, 1}: decommission both, then let the next
    // control cycle's delegation pass observe the empty rack.
    sim.decommission_node(NodeId(0));
    sim.decommission_node(NodeId(1));
    sim.run_for(SimDuration::from_secs(5));

    let h = sim.hierarchy().unwrap();
    let rack_w = h.rack_budget_w();
    assert_eq!(rack_w[0], 0.0, "dead rack keeps a budget: {}", rack_w[0]);
    assert_conserving(&sim);
    // The orphaned headroom flows back: rack 1 (the row sibling) now
    // holds essentially the whole row budget.
    let row0 = h.row_budget_w()[0];
    assert!(
        rack_w[1] > 0.9 * row0,
        "sibling did not reclaim the drained budget: rack1={} row0={row0}",
        rack_w[1]
    );
    // And the drain is journaled for the operator.
    let drains = sim.journal().by_category("hier").count();
    assert!(drains > 0, "no drain event in the journal");
}

#[test]
fn single_rack_hierarchy_matches_flat_manager_bit_for_bit() {
    use ppc_core::{NodeSets, PowerManager};

    let spec = hier_spec(8);
    let config = ManagerConfig {
        training_cycles: 0,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let flat = {
        let sets = NodeSets::new(spec.node_ids(), []);
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec.clone()).with_manager(manager);
        sim.run_for(SimDuration::from_secs(120));
        (
            sim.journal().fingerprint(),
            sim.true_power().fingerprint(),
            sim.span_fingerprint(),
            sim.metrics_fingerprint(),
        )
    };
    let hier = {
        let mut sim = hier_sim(Topology::single_rack(8).unwrap(), false);
        sim.run_for(SimDuration::from_secs(120));
        (
            sim.journal().fingerprint(),
            sim.true_power().fingerprint(),
            sim.span_fingerprint(),
            sim.metrics_fingerprint(),
        )
    };
    assert_eq!(
        flat, hier,
        "single-rack hierarchy is not a bitwise passthrough of the flat manager"
    );
}
