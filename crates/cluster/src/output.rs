//! Report formatting: aligned text tables, CSV, JSON.
//!
//! The figure regenerators print the same rows/series the paper reports;
//! these helpers keep their output consistent and machine-readable.

use crate::experiment::ExperimentOutcome;
use std::fmt::Write as _;

/// Renders an aligned text table.
///
/// # Panics
/// Panics if any row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<&str>, widths: &[usize]| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = *w);
        }
        out.push('\n');
    };
    line(&mut out, headers.to_vec(), &widths);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, rule.iter().map(String::as_str).collect(), &widths);
    for row in rows {
        line(&mut out, row.iter().map(String::as_str).collect(), &widths);
    }
    out
}

/// Quotes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes, with
/// embedded quotes doubled. Clean fields pass through unchanged.
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        let mut quoted = String::with_capacity(field.len() + 2);
        quoted.push('"');
        for ch in field.chars() {
            if ch == '"' {
                quoted.push('"');
            }
            quoted.push(ch);
        }
        quoted.push('"');
        quoted
    } else {
        field.to_string()
    }
}

/// Renders rows as RFC-4180 CSV (fields with commas, quotes or line
/// breaks are quoted; numeric tables pass through unchanged).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &mut dyn Iterator<Item = &str>| {
        for (i, cell) in cells.enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&csv_field(cell));
        }
        out.push('\n');
    };
    render_row(&mut out, &mut headers.iter().copied());
    for row in rows {
        render_row(&mut out, &mut row.iter().map(String::as_str));
    }
    out
}

/// Serializes an outcome (minus the bulky trace) to pretty JSON.
pub fn outcome_to_json(outcome: &ExperimentOutcome) -> String {
    // The full trace can hold hundreds of thousands of samples; reports
    // keep a decimated preview and the complete metrics.
    let slim = ExperimentOutcome {
        trace: outcome.trace.decimate(60),
        records: Vec::new(),
        ..outcome.clone()
    };
    // ppc-lint: allow(panic-path): serializing a plain data struct with the vendored encoder cannot fail
    serde_json::to_string_pretty(&slim).expect("outcome serializes")
}

/// Formats watts as kilowatts with two decimals.
pub fn kw(watts: f64) -> String {
    format!("{:.2}", watts / 1_000.0)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["long-name".to_string(), "12345".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All lines align to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["x".to_string()]]);
    }

    #[test]
    fn csv_shape() {
        let csv = render_csv(&["x", "y"], &[vec!["1".to_string(), "2".to_string()]]);
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    fn csv_quotes_commas_quotes_and_newlines() {
        let csv = render_csv(
            &["label", "note"],
            &[
                vec!["mpc/64".to_string(), "red, then green".to_string()],
                vec!["say \"hi\"".to_string(), "two\nlines".to_string()],
                vec!["clean".to_string(), "also clean".to_string()],
            ],
        );
        let expected = "label,note\n\
                        mpc/64,\"red, then green\"\n\
                        \"say \"\"hi\"\"\",\"two\nlines\"\n\
                        clean,also clean\n";
        assert_eq!(csv, expected);
    }

    #[test]
    fn csv_quotes_headers_too() {
        let csv = render_csv(&["a,b", "c"], &[]);
        assert_eq!(csv, "\"a,b\",c\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kw(43_640.0), "43.64");
        assert_eq!(pct(0.731), "73.1%");
    }
}
