//! Struct-of-arrays node columns and the deterministic dirty set.
//!
//! The tick loop's hot quantities — per-node power, relative speed, the
//! down flag — live here as dense parallel `Vec`s indexed by `NodeId.0`,
//! so the fleet power sum is a straight index-order fold over an `f64`
//! slice (auto-vectorizable, no closure dispatch, no per-node branch:
//! downed nodes simply hold `0.0`) and incremental evaluation can touch
//! only the entries whose inputs changed.
//!
//! ## Dirty-set invariants
//!
//! * A node is *dirty at tick T* iff any power-relevant input changed for
//!   T: its job load (start/finish/phase boundary/eviction), its DVFS
//!   level, or its up/down state. Clean nodes' cached `power_w` entries
//!   are exact — the evaluator never recomputes them.
//! * The set is a dense bitmask plus an insertion-ordered, deduplicated
//!   index list, so iteration order is a pure function of the marking
//!   order — identical across runs and worker-pool widths.
//! * Marks for effects that only materialize *next* tick (a phase
//!   boundary or job finish observed while advancing tick T changes loads
//!   starting at T+1; a level command applied during T's control cycle
//!   changes power first summed at T+1) go to a staged set that
//!   [`DirtySet::begin_tick`] promotes, swapping buffers without
//!   allocating.
//! * `stamp[i]` records the last tick node `i`'s columns were
//!   materialized; the gap to the current tick is exactly how many
//!   identical intervals a quiescent node skipped (what
//!   [`ppc_node::procfs::ProcCounters::advance_many`] replays in closed
//!   form). Stamps freeze while a node is down and resume on the up edge.

use ppc_node::NodeId;

/// Deterministic dirty set: dense bitmask + ordered index list, with a
/// staged buffer for marks that take effect next tick.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    mask: Vec<bool>,
    list: Vec<u32>,
    staged_mask: Vec<bool>,
    staged_list: Vec<u32>,
}

impl DirtySet {
    fn with_len(n: usize) -> Self {
        DirtySet {
            mask: vec![false; n],
            list: Vec::with_capacity(n),
            staged_mask: vec![false; n],
            staged_list: Vec::with_capacity(n),
        }
    }

    /// Marks `node` dirty for the current tick.
    pub fn mark(&mut self, node: NodeId) {
        let i = node.0 as usize;
        if !self.mask[i] {
            self.mask[i] = true;
            self.list.push(node.0);
        }
    }

    /// Marks `node` dirty for the *next* tick.
    pub fn mark_next(&mut self, node: NodeId) {
        let i = node.0 as usize;
        if !self.staged_mask[i] {
            self.staged_mask[i] = true;
            self.staged_list.push(node.0);
        }
    }

    /// Promotes staged marks into the live set at a tick boundary. The
    /// cleared live buffers become next tick's staging area — no
    /// allocation after construction.
    pub fn begin_tick(&mut self) {
        for &i in &self.list {
            self.mask[i as usize] = false;
        }
        self.list.clear();
        std::mem::swap(&mut self.mask, &mut self.staged_mask);
        std::mem::swap(&mut self.list, &mut self.staged_list);
    }

    /// True if `node` is dirty this tick.
    pub fn contains(&self, node: NodeId) -> bool {
        self.mask[node.0 as usize]
    }

    /// Dirty node indices in mark order (deduplicated).
    pub fn indices(&self) -> &[u32] {
        &self.list
    }

    /// True when no node is dirty this tick.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Dense per-node columns for the hot tick path.
#[derive(Debug, Clone)]
pub struct NodeColumns {
    /// True power draw, watts; `0.0` while the node is down, so the fleet
    /// sum needs no branch.
    power_w: Vec<f64>,
    /// Relative compute speed at the node's current DVFS level.
    speed: Vec<f64>,
    /// Down flag (mirrors the fault engine; kept for queries, not needed
    /// by the sum).
    down: Vec<bool>,
    /// Last tick the node's state columns were materialized.
    stamp: Vec<u64>,
    /// The dirty set driving incremental evaluation.
    pub dirty: DirtySet,
    /// Cached fleet power sum and its validity.
    fleet_sum_w: f64,
    sum_valid: bool,
    /// Shard-contiguous layout: half-open `[lo, hi)` node-id ranges, one
    /// per shard (rack), covering the column in index order. Empty until
    /// [`set_shards`](Self::set_shards) — per-shard sums are a
    /// hierarchical-manager feature.
    shards: Vec<(u32, u32)>,
    /// Cached per-shard power sums and their validity (invalidated by
    /// exactly the same edges as the fleet sum).
    shard_sum_w: Vec<f64>,
    shards_valid: bool,
}

impl NodeColumns {
    /// Columns for `n` nodes, all clean, stamped at tick 0, idle power to
    /// be filled by the first evaluation.
    pub fn new(n: usize) -> Self {
        NodeColumns {
            power_w: vec![0.0; n],
            speed: vec![1.0; n],
            down: vec![false; n],
            stamp: vec![0; n],
            dirty: DirtySet::with_len(n),
            fleet_sum_w: 0.0,
            sum_valid: false,
            shards: Vec::new(),
            shard_sum_w: Vec::new(),
            shards_valid: false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.power_w.len()
    }

    /// True for an empty store.
    pub fn is_empty(&self) -> bool {
        self.power_w.is_empty()
    }

    /// The power column (dense, `0.0` for downed nodes).
    pub fn power_w(&self) -> &[f64] {
        &self.power_w
    }

    /// The relative-speed column.
    pub fn speed(&self) -> &[f64] {
        &self.speed
    }

    /// Relative speed of one node (used by the scheduler's speed lookup).
    pub fn speed_of(&self, node: NodeId) -> f64 {
        self.speed[node.0 as usize]
    }

    /// True if `node` is marked down in the columns.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize]
    }

    /// Last tick `node` was materialized.
    pub fn stamp_of(&self, node: NodeId) -> u64 {
        self.stamp[node.0 as usize]
    }

    /// Writes a node's freshly evaluated power/speed and stamps it.
    pub fn materialize(&mut self, node: NodeId, power_w: f64, speed: f64, tick: u64) {
        let i = node.0 as usize;
        self.power_w[i] = power_w;
        self.speed[i] = speed;
        self.stamp[i] = tick;
        self.sum_valid = false;
        self.shards_valid = false;
    }

    /// Updates only the speed column (a level change between evaluations).
    pub fn set_speed(&mut self, node: NodeId, speed: f64) {
        self.speed[node.0 as usize] = speed;
    }

    /// Advances a node's stamp without touching power/speed — used when the
    /// counters were caught up out of band (a sampling agent pulled the
    /// node current) so a later materialization doesn't replay the window
    /// twice.
    pub fn set_stamp(&mut self, node: NodeId, tick: u64) {
        self.stamp[node.0 as usize] = tick;
    }

    /// Mutable access to the whole power column for a dense refill (the
    /// `Full` evaluation mode overwrites every entry each tick). The
    /// cached sum is invalidated.
    pub fn power_fill_mut(&mut self) -> &mut [f64] {
        self.sum_valid = false;
        self.shards_valid = false;
        &mut self.power_w
    }

    /// Takes a node down: power contribution drops to zero immediately and
    /// the stamp freezes until [`set_up`](Self::set_up).
    pub fn set_down(&mut self, node: NodeId) {
        let i = node.0 as usize;
        self.down[i] = true;
        self.power_w[i] = 0.0;
        self.sum_valid = false;
        self.shards_valid = false;
    }

    /// Brings a node back up at `tick`; its next materialization starts
    /// from here (the downtime never accrued counters).
    pub fn set_up(&mut self, node: NodeId, tick: u64) {
        let i = node.0 as usize;
        self.down[i] = false;
        self.stamp[i] = tick;
        self.sum_valid = false;
        self.shards_valid = false;
    }

    /// Fleet power sum: a serial index-order fold over the dense power
    /// column — bit-identical to the ordered parallel reduction it
    /// replaces (that reduction also folded slot results in index order).
    /// Cached between ticks; any materialization or down/up edge
    /// invalidates the cache.
    pub fn fleet_power_w(&mut self) -> f64 {
        if !self.sum_valid {
            self.fleet_sum_w = self.power_w.iter().sum();
            self.sum_valid = true;
        }
        self.fleet_sum_w
    }

    /// Installs the shard-contiguous layout: half-open `[lo, hi)` node-id
    /// ranges in index order, one per rack. Ranges must tile the column
    /// (each starts where the previous ended, the last ends at `len`).
    ///
    /// # Panics
    /// Panics if the ranges do not tile the column.
    pub fn set_shards(&mut self, shards: Vec<(u32, u32)>) {
        let mut expect = 0u32;
        for &(lo, hi) in &shards {
            assert!(lo == expect && hi >= lo, "shards must tile the column");
            expect = hi;
        }
        assert_eq!(
            expect as usize,
            self.power_w.len(),
            "shards must cover every node"
        );
        self.shard_sum_w = vec![0.0; shards.len()];
        self.shards = shards;
        self.shards_valid = false;
    }

    /// The installed shard ranges (empty without a hierarchical manager).
    pub fn shards(&self) -> &[(u32, u32)] {
        &self.shards
    }

    /// Per-shard power sums: each entry is a serial index-order fold over
    /// its shard's contiguous sub-slice of the dense power column, so a
    /// rack's fleet sum is exactly the flat fold restricted to its range —
    /// deterministic at any worker-pool width, same as the fleet sum.
    /// Cached; invalidated by the same edges as the fleet sum. The fleet
    /// sum stays a single whole-column fold (float addition is not
    /// associative: summing shard sums would change its bits).
    pub fn shard_power_w(&mut self) -> &[f64] {
        if !self.shards_valid {
            for (s, &(lo, hi)) in self.shard_sum_w.iter_mut().zip(&self.shards) {
                *s = self.power_w[lo as usize..hi as usize].iter().sum();
            }
            self.shards_valid = true;
        }
        &self.shard_sum_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_marks_dedupe_and_preserve_order() {
        let mut d = DirtySet::with_len(8);
        d.mark(NodeId(5));
        d.mark(NodeId(2));
        d.mark(NodeId(5));
        assert_eq!(d.indices(), &[5, 2]);
        assert!(d.contains(NodeId(2)));
        assert!(!d.contains(NodeId(0)));
    }

    #[test]
    fn staged_marks_promote_at_tick_boundary() {
        let mut d = DirtySet::with_len(4);
        d.mark(NodeId(0));
        d.mark_next(NodeId(3));
        d.mark_next(NodeId(1));
        assert_eq!(d.indices(), &[0]);
        d.begin_tick();
        assert_eq!(d.indices(), &[3, 1]);
        assert!(!d.contains(NodeId(0)));
        d.begin_tick();
        assert!(d.is_empty());
    }

    #[test]
    fn mark_during_tick_joins_promoted_marks() {
        let mut d = DirtySet::with_len(4);
        d.mark_next(NodeId(2));
        d.begin_tick();
        d.mark(NodeId(0));
        d.mark(NodeId(2)); // already present via promotion
        assert_eq!(d.indices(), &[2, 0]);
    }

    #[test]
    fn shard_sums_are_dense_range_folds() {
        let mut c = NodeColumns::new(6);
        c.set_shards(vec![(0, 2), (2, 4), (4, 6)]);
        for i in 0..6u32 {
            c.materialize(NodeId(i), (i + 1) as f64 * 10.0, 1.0, 0);
        }
        assert_eq!(c.shard_power_w(), &[30.0, 70.0, 110.0]);
        // Same invalidation edges as the fleet sum.
        c.set_down(NodeId(2));
        assert_eq!(c.shard_power_w(), &[30.0, 40.0, 110.0]);
        assert_eq!(c.fleet_power_w(), 180.0);
        // Each shard sum is bitwise the flat fold over its sub-slice.
        let expect: f64 = c.power_w()[2..4].iter().sum();
        assert_eq!(c.shard_power_w()[1].to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn shards_must_tile() {
        let mut c = NodeColumns::new(4);
        c.set_shards(vec![(0, 2), (3, 4)]);
    }

    #[test]
    fn fleet_sum_matches_serial_fold_and_caches() {
        let mut c = NodeColumns::new(4);
        for i in 0..4u32 {
            c.materialize(NodeId(i), (i + 1) as f64 * 100.0, 1.0, 0);
        }
        assert_eq!(c.fleet_power_w(), 1000.0);
        // Down node contributes zero without a branch in the fold.
        c.set_down(NodeId(2));
        assert_eq!(c.fleet_power_w(), 700.0);
        assert!(c.is_down(NodeId(2)));
        c.set_up(NodeId(2), 7);
        assert_eq!(c.stamp_of(NodeId(2)), 7);
        c.materialize(NodeId(2), 250.0, 0.8, 8);
        assert_eq!(c.fleet_power_w(), 950.0);
        assert_eq!(c.speed_of(NodeId(2)), 0.8);
    }
}
