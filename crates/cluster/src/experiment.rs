//! The paper's experiment protocol.
//!
//! A run has two phases on one continuous simulation:
//!
//! 1. **Training** — the cluster executes the random job mix with every
//!    node at its highest power state; the manager only observes, and at
//!    the end of the period adopts the recorded peak as `P_peak`
//!    (thresholds become `93%/84% · P_peak`).
//! 2. **Measurement** — capping is live; all metrics (`Performance`,
//!    CPLJ, `P_max`, ΔP×T) are computed over this window only.
//!
//! The unmanaged baseline (`policy = None`) runs the same seed and
//! durations with no manager attached; Figures 6 and 7 normalize against
//! it. ΔP×T always uses the provision capability `P_Max` as `P_th`.

use crate::sim::ClusterSim;
use crate::spec::ClusterSpec;
use ppc_core::manager::ManagerStats;
use ppc_core::{ManagerConfig, NodeSets, PolicyKind, PowerManager, PowerState};
use ppc_faults::FaultInjection;
use ppc_metrics::{AvailabilityReport, RunMetrics};
use ppc_obs::{HealthReport, ObsReport};
use ppc_simkit::{SimDuration, TimeSeries};
use ppc_telemetry::cost::ManagementCostModel;
use ppc_workload::JobRecord;
use serde::{Deserialize, Serialize};

/// Configuration of one experimental run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The cluster under test.
    pub spec: ClusterSpec,
    /// Selection policy; `None` = unmanaged baseline run.
    pub policy: Option<PolicyKind>,
    /// Candidate-set size cap (`None` = all controllable nodes).
    pub candidate_cap: Option<usize>,
    /// Training-phase length.
    pub training: SimDuration,
    /// Measurement-phase length.
    pub measurement: SimDuration,
    /// `T_g` in control cycles (paper: 10).
    pub t_g_cycles: u64,
    /// `t_p` in control cycles.
    pub t_p_cycles: u64,
    /// CPLJ tolerance for tick quantization of finish times.
    pub lossless_tolerance: f64,
    /// Override of the lower-threshold margin (default: paper's 16%).
    pub low_margin: Option<f64>,
    /// Override of the upper-threshold margin (default: paper's 7%).
    pub high_margin: Option<f64>,
    /// Pin the thresholds to the provision-derived pair (admin mode).
    pub frozen_thresholds: bool,
    /// Fault injection for the run (`None` = healthy machine).
    pub faults: Option<FaultInjection>,
}

impl ExperimentConfig {
    /// The paper's setup on the Tianhe-1A variant. The wall-clock protocol
    /// (24 h training + 12 h measurement) is compressed to 2 h + 6 h of
    /// simulated time — enough for hundreds of finished jobs and a
    /// converged peak estimate — with every period expressed in control
    /// cycles exactly as in the paper.
    pub fn paper(policy: Option<PolicyKind>) -> Self {
        ExperimentConfig {
            spec: ClusterSpec::tianhe_1a_variant(),
            policy,
            candidate_cap: None,
            training: SimDuration::from_hours(2),
            measurement: SimDuration::from_hours(6),
            t_g_cycles: 10,
            t_p_cycles: 3_600,
            lossless_tolerance: 0.01,
            low_margin: None,
            high_margin: None,
            frozen_thresholds: false,
            faults: None,
        }
    }

    /// A fast variant for tests and the quickstart (minutes, small cluster).
    pub fn quick(policy: Option<PolicyKind>, nodes: u32) -> Self {
        ExperimentConfig {
            spec: ClusterSpec::mini(nodes),
            policy,
            candidate_cap: None,
            training: SimDuration::from_mins(5),
            measurement: SimDuration::from_mins(20),
            t_g_cycles: 10,
            t_p_cycles: 600,
            lossless_tolerance: 0.02,
            low_margin: None,
            high_margin: None,
            frozen_thresholds: false,
            faults: None,
        }
    }

    /// Control cycles in the training phase.
    fn training_cycles(&self) -> u64 {
        self.training.as_millis() / self.spec.tick.as_millis()
    }
}

/// Everything one run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Run label (policy name or "uncapped").
    pub label: String,
    /// Metrics over the measurement window.
    pub metrics: RunMetrics,
    /// Measurement-window power trace (true power).
    pub trace: TimeSeries,
    /// Jobs finished during the measurement window.
    pub records: Vec<JobRecord>,
    /// Manager cycle stats over the measurement window (`None` for the
    /// baseline run).
    pub manager_stats: Option<ManagerStats>,
    /// Red cycles observed during measurement (the paper's safety claim:
    /// this stays 0 under capping).
    pub red_cycles_measured: u64,
    /// Learned `P_peak`, watts (provision capability for the baseline).
    pub p_peak_w: f64,
    /// `(P_L, P_H)` in force at the end, watts.
    pub thresholds_w: (f64, f64),
    /// Provision capability `P_Max` used as the ΔP×T threshold, watts.
    pub provision_w: f64,
    /// Measured mean management cost per control cycle, seconds.
    pub mgmt_cost_secs: f64,
    /// Modeled management-node CPU utilization for this candidate count.
    pub modeled_mgmt_util: f64,
    /// Candidate-set size in force.
    pub candidate_count: usize,
    /// Availability report (`None` without faults). Outage accounting
    /// covers the whole run; the Red/conservative cycle fractions are
    /// rebased on the measurement window when manager stats exist.
    pub availability: Option<AvailabilityReport>,
    /// Journal events evicted by the bounded ring over the run (0 means
    /// the audit trail is complete).
    pub journal_dropped: u64,
    /// Observability summary: span/metrics fingerprints, instrument
    /// values, flight-recorder snapshots.
    pub obs: ObsReport,
    /// Fleet health summary: rollup/sketch/alert fingerprints, dwell
    /// fractions, coverage floor, power distributions, alert counts.
    pub health: HealthReport,
}

/// Runs one experiment (training + measurement) and computes its metrics.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentOutcome {
    run_experiment_full(config).0
}

/// Builds the configured simulation — cluster, manager, faults — without
/// running it, returning the run label alongside. [`run_experiment_full`]
/// drives the result through training + measurement; the what-if
/// subsystem (`ppc-whatif`) uses it to rehydrate a serialized base
/// scenario by deterministic replay.
pub fn build_sim(config: &ExperimentConfig) -> (String, ClusterSim) {
    let spec = &config.spec;
    spec.validate();
    let provision_w = spec.provision_w();

    let (label, mut sim) = match config.policy {
        None => ("uncapped".to_string(), ClusterSim::new(spec.clone())),
        Some(policy) => {
            let sets = NodeSets::new(spec.node_ids(), spec.privileged.iter().copied())
                .with_candidate_cap(config.candidate_cap);
            let defaults = ManagerConfig::paper_defaults(provision_w, policy);
            let mconfig = ManagerConfig {
                t_g_cycles: config.t_g_cycles,
                t_p_cycles: config.t_p_cycles,
                training_cycles: config.training_cycles(),
                low_margin: config.low_margin.unwrap_or(defaults.low_margin),
                high_margin: config.high_margin.unwrap_or(defaults.high_margin),
                frozen_thresholds: config.frozen_thresholds,
                ..defaults
            };
            // ppc-lint: allow(panic-path): spec.validate() ran above and margins come from paper_defaults, so construction cannot fail
            let manager = PowerManager::new(mconfig, sets).expect("validated config");
            let label = match config.candidate_cap {
                Some(cap) => format!("{policy}/{cap}"),
                None => policy.to_string(),
            };
            (label, ClusterSim::new(spec.clone()).with_manager(manager))
        }
    };
    if let Some(faults) = config.faults.clone() {
        sim = sim.with_faults(faults);
    }
    (label, sim)
}

/// [`run_experiment`], additionally handing back the finished simulation
/// for callers that need post-run access to its state — the trace
/// exporters read the raw span recorder and metrics registry, and the
/// self-profiler report lives only on the sim.
pub fn run_experiment_full(config: &ExperimentConfig) -> (ExperimentOutcome, ClusterSim) {
    let provision_w = config.spec.provision_w();
    let (label, mut sim) = build_sim(config);

    // Phase 1: training (runs even for the baseline so both see the same
    // warmed-up cluster at measurement start).
    sim.run_for(config.training);
    let t0 = sim.now();
    let stats_at_t0 = sim.manager().map(|m| m.stats());
    let finished_at_t0 = sim.finished().len();

    // Phase 2: measurement.
    sim.run_for(config.measurement);

    let trace = sim.true_power().since(t0);
    let records: Vec<JobRecord> = sim.finished()[finished_at_t0..].to_vec();
    let metrics = RunMetrics::compute(
        label.clone(),
        &trace,
        &records,
        provision_w,
        config.lossless_tolerance,
    );

    let manager_stats = match (sim.manager().map(|m| m.stats()), stats_at_t0) {
        (Some(end), Some(start)) => Some(ManagerStats {
            cycles: end.cycles - start.cycles,
            green_cycles: end.green_cycles - start.green_cycles,
            yellow_cycles: end.yellow_cycles - start.yellow_cycles,
            red_cycles: end.red_cycles - start.red_cycles,
            commands_issued: end.commands_issued - start.commands_issued,
            threshold_adjustments: end.threshold_adjustments - start.threshold_adjustments,
            conservative_cycles: end.conservative_cycles - start.conservative_cycles,
        }),
        _ => None,
    };
    let red_cycles_measured = sim
        .state_log()
        .iter()
        .filter(|(at, s)| *at > t0 && *s == PowerState::Red)
        .count() as u64;

    let candidate_count = sim
        .manager()
        .map(|m| m.sets().candidate_count())
        .unwrap_or(0);
    let (p_peak_w, thresholds_w) = match sim.manager() {
        Some(m) => {
            let t = m.thresholds();
            (m.learner().p_peak_w(), (t.p_low_w(), t.p_high_w()))
        }
        None => (provision_w, (0.0, 0.0)),
    };

    // Rebase the report's cycle fractions on the measurement window: the
    // training hour legitimately spends cycles in Red while the manager
    // only observes, and charging those against the fault run would make
    // the capping-safety figure unreadable.
    let mut availability = sim.availability_report();
    if let (Some(a), Some(stats)) = (availability.as_mut(), manager_stats.as_ref()) {
        if stats.cycles > 0 {
            a.red_fraction = stats.red_cycles as f64 / stats.cycles as f64;
            a.conservative_fraction = stats.conservative_cycles as f64 / stats.cycles as f64;
        }
    }

    let outcome = ExperimentOutcome {
        label,
        metrics,
        trace,
        records,
        manager_stats,
        red_cycles_measured,
        p_peak_w,
        thresholds_w,
        provision_w,
        mgmt_cost_secs: sim.mean_mgmt_cost_secs(),
        modeled_mgmt_util: ManagementCostModel::tianhe_1a().utilization(candidate_count),
        candidate_count,
        availability,
        journal_dropped: sim.journal().dropped(),
        obs: sim.obs().report(),
        health: sim.health().report(),
    };
    (outcome, sim)
}

/// Runs the same experiment under several seeds and summarizes the
/// headline metrics (mean ± sample std over replications).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedOutcome {
    /// One outcome per seed, in input order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Performance(cap) across seeds.
    pub performance: ppc_metrics::ReplicationSummary,
    /// CPLJ fraction across seeds.
    pub cplj_fraction: ppc_metrics::ReplicationSummary,
    /// P_max (watts) across seeds.
    pub p_max_w: ppc_metrics::ReplicationSummary,
    /// ΔP×T across seeds.
    pub overspend: ppc_metrics::ReplicationSummary,
}

/// Runs `config` once per seed and summarizes.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn run_replicated(config: &ExperimentConfig, seeds: &[u64]) -> ReplicatedOutcome {
    assert!(!seeds.is_empty(), "need at least one seed");
    let outcomes: Vec<ExperimentOutcome> = seeds
        .iter()
        .map(|&seed| {
            let mut cfg = config.clone();
            cfg.spec.seed = seed;
            run_experiment(&cfg)
        })
        .collect();
    let collect =
        |f: &dyn Fn(&ExperimentOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
    ReplicatedOutcome {
        performance: ppc_metrics::summarize_replications(&collect(&|o| o.metrics.performance)),
        cplj_fraction: ppc_metrics::summarize_replications(&collect(&|o| o.metrics.cplj_fraction)),
        p_max_w: ppc_metrics::summarize_replications(&collect(&|o| o.metrics.p_max_w)),
        overspend: ppc_metrics::summarize_replications(&collect(&|o| o.metrics.overspend)),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_run_produces_metrics() {
        let cfg = ExperimentConfig::quick(None, 4);
        let out = run_experiment(&cfg);
        assert_eq!(out.label, "uncapped");
        assert!(out.manager_stats.is_none());
        assert!(out.metrics.p_max_w > 0.0);
        assert!(!out.trace.is_empty());
        assert_eq!(out.candidate_count, 0);
        // Uncapped jobs run at full speed: performance is 1 up to the
        // millisecond resolution of recorded finish times.
        assert!(
            out.metrics.performance > 0.9999,
            "{}",
            out.metrics.performance
        );
        assert_eq!(out.metrics.cplj, out.metrics.jobs_finished);
    }

    #[test]
    fn managed_run_learns_thresholds_from_training() {
        let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 4);
        cfg.spec.provision_fraction = 0.70;
        let out = run_experiment(&cfg);
        let stats = out.manager_stats.expect("managed run has stats");
        assert!(stats.cycles > 0);
        // The learned peak must be at most the provision seed and
        // positive; with a busy mini cluster it reflects real draw.
        assert!(out.p_peak_w > 0.0);
        let (pl, ph) = out.thresholds_w;
        assert!(pl <= ph && ph <= out.p_peak_w * 0.93 + 1e-6);
    }

    #[test]
    fn replication_summary_spans_seeds() {
        let cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 6);
        let rep = run_replicated(&cfg, &[1, 2, 3]);
        assert_eq!(rep.outcomes.len(), 3);
        assert_eq!(rep.performance.n, 3);
        // Different seeds genuinely differ.
        assert!(rep.p_max_w.max > rep.p_max_w.min);
        // Every replication stays in the sane band.
        assert!(rep.performance.min > 0.5 && rep.performance.max <= 1.0);
    }

    #[test]
    fn capping_improves_overspend_vs_baseline() {
        let mut base_cfg = ExperimentConfig::quick(None, 4);
        base_cfg.spec.provision_fraction = 0.70;
        let mut cap_cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 4);
        cap_cfg.spec.provision_fraction = 0.70;
        let base = run_experiment(&base_cfg);
        let capped = run_experiment(&cap_cfg);
        assert!(
            capped.metrics.p_max_w <= base.metrics.p_max_w,
            "capped {} vs uncapped {}",
            capped.metrics.p_max_w,
            base.metrics.p_max_w
        );
        assert!(capped.metrics.overspend <= base.metrics.overspend + 1e-9);
    }
}
