//! Cluster-level configuration.

use ppc_node::spec::NodeSpec;
use ppc_node::NodeId;
use ppc_simkit::SimDuration;
use ppc_telemetry::NoiseModel;
use ppc_workload::app::Class;
use ppc_workload::replay::TraceEntry;
use serde::{Deserialize, Serialize};

/// A group of identical nodes in a (possibly heterogeneous) cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeGroup {
    /// Hardware model of every node in the group.
    pub spec: NodeSpec,
    /// Number of nodes.
    pub count: u32,
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Node hardware model of the base partition (the testbed is
    /// homogeneous: 128 of these and nothing else).
    pub node_spec: NodeSpec,
    /// Number of compute nodes in the base partition.
    pub node_count: u32,
    /// Additional node groups (heterogeneous partitions). Node ids are
    /// assigned base-partition-first, then group by group. All groups
    /// must expose the same core count as the base spec (uniform rank
    /// placement); ladders and power envelopes may differ — Algorithm 1
    /// handles per-node ladder heights.
    pub extra_groups: Vec<NodeGroup>,
    /// Simulation tick = sampling interval τ = control cycle period.
    pub tick: SimDuration,
    /// Nodes that are privileged (uncontrollable).
    pub privileged: Vec<NodeId>,
    /// Power provision capability `P_Max` as a fraction of the theoretical
    /// maximal power `P_thy` (the Necessity assumption requires < 1).
    pub provision_fraction: f64,
    /// Facility-meter error model.
    pub meter_noise: NoiseModel,
    /// Profiling-agent error model.
    pub agent_noise: NoiseModel,
    /// NPB problem class of generated jobs.
    pub class: Class,
    /// Mean think time between a queue-empty observation and the next job
    /// submission (exponentially distributed). Zero reproduces the paper's
    /// literal "append whenever the queue is empty"; a positive value
    /// models the submission gaps behind the paper's low-average-
    /// utilization premise ("the probability of synchronized power spikes
    /// … is zero because of its low resource utilization").
    pub think_time_mean: SimDuration,
    /// Fraction of generated jobs that are SLA-critical: their nodes are
    /// privileged (uncontrollable) for the job's lifetime, shrinking the
    /// candidate set dynamically (paper §II.A).
    pub critical_job_fraction: f64,
    /// Replay this fixed submission trace instead of the random generator
    /// (`None` = the paper's random workload).
    pub job_trace: Option<Vec<TraceEntry>>,
    /// Admit queued jobs by aggressive backfill instead of the paper's
    /// strict FIFO (scheduling-substrate ablation).
    pub backfill: bool,
    /// Target queue depth: the generator submits while fewer jobs are
    /// queued (1 = the paper's refill-on-empty protocol; deeper queues
    /// make backfill meaningful).
    pub queue_depth: usize,
    /// Experiment RNG seed.
    pub seed: u64,
}

impl ClusterSpec {
    /// The paper's experiment environment: 128 Tianhe-1A nodes (2× Xeon
    /// X5670, 12 cores, 24 GB), τ = 1 s, CLASS=D jobs with NPROCS up to
    /// 256, provision capability below the theoretical peak.
    pub fn tianhe_1a_variant() -> Self {
        ClusterSpec {
            node_spec: NodeSpec::tianhe_1a(),
            node_count: 128,
            extra_groups: Vec::new(),
            tick: SimDuration::from_secs(1),
            privileged: Vec::new(),
            provision_fraction: 0.70,
            meter_noise: NoiseModel::METER_1PCT,
            agent_noise: NoiseModel::NONE,
            class: Class::D,
            think_time_mean: SimDuration::from_secs(15),
            critical_job_fraction: 0.0,
            job_trace: None,
            backfill: false,
            queue_depth: 1,
            seed: 20120521, // IPDPS-W 2012
        }
    }

    /// A small fast cluster for tests and the quickstart example.
    pub fn mini(node_count: u32) -> Self {
        ClusterSpec {
            node_spec: NodeSpec::tianhe_1a(),
            node_count,
            extra_groups: Vec::new(),
            tick: SimDuration::from_secs(1),
            privileged: Vec::new(),
            provision_fraction: 0.80,
            meter_noise: NoiseModel::NONE,
            agent_noise: NoiseModel::NONE,
            class: Class::A,
            think_time_mean: SimDuration::ZERO,
            critical_job_fraction: 0.0,
            job_trace: None,
            backfill: false,
            queue_depth: 1,
            seed: 7,
        }
    }

    /// Total node count across all partitions.
    pub fn total_nodes(&self) -> u32 {
        self.node_count + self.extra_groups.iter().map(|g| g.count).sum::<u32>()
    }

    /// All node ids (base partition first, then each extra group).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.total_nodes()).map(NodeId)
    }

    /// The hardware spec of node `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn spec_of(&self, id: NodeId) -> &NodeSpec {
        let mut idx = id.0;
        if idx < self.node_count {
            return &self.node_spec;
        }
        idx -= self.node_count;
        for g in &self.extra_groups {
            if idx < g.count {
                return &g.spec;
            }
            idx -= g.count;
        }
        // ppc-lint: allow(panic-path): documented "# Panics" contract of this indexing-style API
        panic!("node {id} out of range");
    }

    /// Theoretical maximal power `P_thy = Σ_i P_i`, watts.
    pub fn theoretical_max_w(&self) -> f64 {
        self.node_count as f64 * self.node_spec.theoretical_max_w()
            + self
                .extra_groups
                .iter()
                .map(|g| g.count as f64 * g.spec.theoretical_max_w())
                .sum::<f64>()
    }

    /// Power provision capability `P_Max`, watts.
    pub fn provision_w(&self) -> f64 {
        self.provision_fraction * self.theoretical_max_w()
    }

    /// Per-node theoretical max power in node-id order (base partition,
    /// then each extra group) — the budget-delegation weights of the
    /// hierarchical control plane.
    pub fn node_weights_w(&self) -> Vec<f64> {
        let mut weights = vec![self.node_spec.theoretical_max_w(); self.node_count as usize];
        for g in &self.extra_groups {
            weights.resize(weights.len() + g.count as usize, g.spec.theoretical_max_w());
        }
        weights
    }

    /// Largest NPROCS the cluster can host.
    pub fn max_nprocs(&self) -> u32 {
        self.total_nodes() * self.node_spec.cores()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on an inconsistent spec (zero nodes, provision ≥ theoretical
    /// peak — violating Necessity — or privileged nodes out of range).
    pub fn validate(&self) {
        assert!(self.node_count > 0, "cluster needs nodes");
        assert!(
            (0.0..1.0).contains(&self.provision_fraction),
            "Necessity: provision capability must be below the theoretical peak"
        );
        assert!(
            self.privileged.iter().all(|n| n.0 < self.total_nodes()),
            "privileged node out of range"
        );
        assert!(
            self.extra_groups
                .iter()
                .all(|g| g.count > 0 && g.spec.cores() == self.node_spec.cores()),
            "extra groups must be non-empty and match the base core count"
        );
        assert!(
            (0.0..=1.0).contains(&self.critical_job_fraction),
            "critical job fraction must be in [0, 1]"
        );
        assert!(self.queue_depth >= 1, "queue depth must be at least 1");
        self.meter_noise.validate();
        self.agent_noise.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_testbed() {
        let s = ClusterSpec::tianhe_1a_variant();
        s.validate();
        assert_eq!(s.node_count, 128);
        assert_eq!(s.max_nprocs(), 1536, "256-rank jobs must fit");
        let thy = s.theoretical_max_w();
        assert!((40_000.0..48_000.0).contains(&thy), "P_thy={thy}");
        assert!(s.provision_w() < thy, "Necessity holds");
    }

    #[test]
    fn mini_cluster_is_valid() {
        let s = ClusterSpec::mini(4);
        s.validate();
        assert_eq!(s.node_ids().count(), 4);
    }

    #[test]
    #[should_panic(expected = "Necessity")]
    fn provision_at_or_above_peak_rejected() {
        let mut s = ClusterSpec::mini(4);
        s.provision_fraction = 1.0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn privileged_out_of_range_rejected() {
        let mut s = ClusterSpec::mini(4);
        s.privileged = vec![NodeId(17)];
        s.validate();
    }
}
