//! The cluster simulation loop.
//!
//! One tick (= the sampling interval τ = one control cycle):
//!
//! 1. refill the job queue if empty (paper protocol) and start queued
//!    jobs on free nodes (first-fit, lowest indices);
//! 2. derive each node's operating state from the job phase it hosts and
//!    advance node states (device counters, `/proc`);
//! 3. advance every running job at the minimum rate over its member nodes
//!    (SPMD bottleneck semantics), collecting finished-job records;
//! 4. sum true node power, push it to the trace, and take a (noisy)
//!    facility-meter reading;
//! 5. run the profiling agents on candidate nodes, feed the collector,
//!    build job observations, and run the power manager's control cycle;
//! 6. apply the resulting throttling commands to the nodes — unless the
//!    manager is still in its training period, during which "all nodes are
//!    running at highest power state without any power management".
//!
//! ## Evaluation modes
//!
//! Step 2/4 run in one of two bit-identical regimes ([`EvalMode`]):
//!
//! * **Full** — the dense reference: every node's state advances every
//!   tick (in parallel via the worker pool) and every node's power is
//!   re-evaluated into the [`NodeColumns`] power column;
//! * **Incremental** (default) — only *dirty* nodes (a load, level, or
//!   up/down input changed) are re-evaluated; clean nodes' counters are
//!   caught up in closed form when next needed
//!   ([`ppc_node::procfs::ProcCounters::advance_many`]) and their cached
//!   column entries stand. The fleet power sum is a serial index-order
//!   fold over the dense column either way, so the two modes (and any
//!   worker-pool width) produce bit-identical traces, journals, span
//!   trees, and metrics.
//!
//! Discrete one-shot events — the think-time arrival gate and the
//! fixed-period control cycle — ride a hierarchical [`TimeWheel`] rather
//! than per-tick polling. Phase boundaries are *not* wheel-predicted:
//! they depend on member speeds, which throttling changes mid-flight, so
//! the advance pass detects them and stages the affected members dirty.

use crate::columns::NodeColumns;
use crate::spec::ClusterSpec;
use ppc_core::capping::LevelView;
use ppc_core::observe::{observe_job_into, observe_jobs_cached, JobObservation};
use ppc_core::{
    BudgetNodeView, CycleOutcome, HierarchicalManager, ManagerStats, PowerManager, PowerState,
    ProportionalBudgetController,
};
use ppc_faults::{FaultEngine, FaultInjection, FaultTransition};
use ppc_metrics::{AvailabilityInputs, AvailabilityReport};
use ppc_node::node::Node;
use ppc_node::{Level, NodeId, OperatingState, PowerModel};
use ppc_obs::{
    AttrValue, CounterHandle, CycleObservation, GaugeHandle, HealthFingerprints, HealthPlane,
    HistogramHandle, MetricsRegistry, ObsHub, QuantileSketch, SpanRecorder, StageWork, ZoneMap,
    ZoneState,
};
use ppc_simkit::journal::{Journal, Severity};
use ppc_simkit::par::WorkerPool;
use ppc_simkit::{RngFactory, SimDuration, SimTime, TickClock, TimeSeries, TimeWheel};
use ppc_telemetry::cost::CycleCostMeter;
use ppc_telemetry::{
    Collector, MeterReading, NodeSample, NoiseModel, ProfilingAgent, SystemPowerMeter,
};
use ppc_workload::{
    AdmissionPolicy, Class, JobGenerator, JobId, JobPriority, JobQueue, JobRecord, NpbApp,
    Scheduler, TraceSource,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the tick loop evaluates node state and power (see the module docs;
/// both modes are bit-identical by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EvalMode {
    /// Dense reference path: every node, every tick.
    Full,
    /// Dirty-set incremental path (default). Falls back to [`Full`]
    /// behaviour automatically when a feature it cannot represent is
    /// active (budget controller, thermal models, agent sampling noise).
    ///
    /// [`Full`]: EvalMode::Full
    #[default]
    Incremental,
}

/// One-shot discrete events scheduled on the simulation's timer wheel.
#[derive(Debug, Clone, Copy)]
enum WheelEvent {
    /// The think-time gate opens: job submission may resume.
    ArrivalGate,
    /// The fixed-period control cycle is due (re-armed every tick).
    ControlDue,
}

/// Give up on a frozen-actuator command after this many attempts (the
/// initial send plus backed-off retries at 1-, 2- and 4-cycle gaps).
const MAX_COMMAND_ATTEMPTS: u32 = 3;

/// A throttling command whose first send hit a frozen DVFS actuator,
/// waiting out its backoff before the next attempt.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    node: NodeId,
    level: Level,
    /// Sends performed so far (≥ 1: the failed original).
    attempts: u32,
    /// Control cycles to skip before the next attempt.
    cooldown: u32,
}

/// Runtime fault state: the schedule replay engine plus the robustness
/// bookkeeping the cluster layer accumulates around it.
#[derive(Clone)]
struct FaultState {
    engine: FaultEngine,
    requeue_cap: u32,
    staleness_limit: SimDuration,
    /// Jobs evicted from dead nodes and successfully requeued.
    jobs_requeued: u64,
    /// Jobs dropped after exhausting the requeue cap.
    jobs_failed: u64,
    /// DVFS commands whose first send failed (dead node or frozen
    /// actuator). Retries and give-ups do not recount.
    commands_failed: u64,
    /// Failed commands waiting out their retry backoff.
    retries: Vec<PendingRetry>,
    /// Scratch: candidates with fresh telemetry this cycle.
    fresh: BTreeSet<NodeId>,
}

/// Handles to the deterministic instruments the cluster layer updates
/// (registered once in [`ClusterSim::new`], bumped on the hot path via
/// index access — no name lookups per tick).
#[derive(Clone, Copy)]
struct ObsInstruments {
    /// Control cycles executed (manager or budget controller).
    cycles: CounterHandle,
    /// Throttling commands applied to nodes (includes retried sends).
    commands_applied: CounterHandle,
    /// Commands whose send failed (dead node or frozen actuator).
    commands_failed: CounterHandle,
    /// Retry sends attempted against previously frozen actuators.
    actuation_retries: CounterHandle,
    /// Green/Yellow → Red transitions.
    red_entries: CounterHandle,
    /// Control cycles spent in the Red state (dwell time in cycles).
    red_dwell_cycles: CounterHandle,
    /// Per-cycle selection size |A_target| (commands issued).
    selection_size: HistogramHandle,
    /// Last metered facility power, W.
    metered_power_w: GaugeHandle,
    /// Journal events evicted by the bounded ring so far.
    journal_dropped: GaugeHandle,
    /// SLO alerts currently firing.
    health_alerts_open: GaugeHandle,
    /// SLO alert open/resolve edges emitted, cumulative.
    health_alert_edges: CounterHandle,
}

impl ObsInstruments {
    /// Bucket bounds for the selection-size histogram (commands/cycle).
    const SELECTION_BOUNDS: [f64; 8] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

    fn register(m: &mut MetricsRegistry) -> Self {
        ObsInstruments {
            cycles: m.counter("control_cycles_total"),
            commands_applied: m.counter("commands_applied_total"),
            commands_failed: m.counter("commands_failed_total"),
            actuation_retries: m.counter("actuation_retries_total"),
            red_entries: m.counter("red_entries_total"),
            red_dwell_cycles: m.counter("red_dwell_cycles_total"),
            selection_size: m.histogram("selection_size", &Self::SELECTION_BOUNDS),
            metered_power_w: m.gauge("metered_power_w"),
            journal_dropped: m.gauge("journal_events_dropped"),
            health_alerts_open: m.gauge("health_alerts_open"),
            health_alert_edges: m.counter("health_alert_edges_total"),
        }
    }
}

/// Handles to the hierarchy-specific instruments, registered only when a
/// *multi-rack* hierarchical manager is attached. A single-rack hierarchy
/// is the flat architecture and must keep the flat registry: the metrics
/// fingerprint walks instrument names, and flat-vs-single-rack-hierarchy
/// bit-equality is a pinned determinism property.
#[derive(Clone)]
struct HierInstruments {
    /// Rack budgets moved by delegation passes, cumulative.
    redelegations: CounterHandle,
    /// Rack budgets drained to zero (all nodes offline), cumulative.
    budget_drains: CounterHandle,
    /// Racks classified Yellow on the last rolled-up cycle.
    racks_yellow: GaugeHandle,
    /// Racks classified Red on the last rolled-up cycle.
    racks_red: GaugeHandle,
    /// Delegated budget per rack, watts — first [`Self::MAX_RACK_GAUGES`]
    /// racks only (per-rack gauges at 100k-node scale would swamp the
    /// registry and its fingerprint walk).
    rack_budget: Vec<GaugeHandle>,
}

impl HierInstruments {
    /// Per-rack budget gauges are capped; beyond this, aggregates only.
    const MAX_RACK_GAUGES: usize = 16;

    fn register(m: &mut MetricsRegistry, racks: usize) -> Self {
        HierInstruments {
            redelegations: m.counter("hier_redelegations_total"),
            budget_drains: m.counter("hier_budget_drains_total"),
            racks_yellow: m.gauge("hier_racks_yellow"),
            racks_red: m.gauge("hier_racks_red"),
            rack_budget: (0..racks.min(Self::MAX_RACK_GAUGES))
                .map(|r| m.gauge(rack_gauge_name(r)))
                .collect(),
        }
    }
}

/// The registry holds `&'static str` names; the per-rack gauge names are
/// interned once per process (bounded by `MAX_RACK_GAUGES`), so repeated
/// sim construction never re-leaks.
fn rack_gauge_name(r: usize) -> &'static str {
    static NAMES: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    NAMES.get_or_init(|| {
        (0..HierInstruments::MAX_RACK_GAUGES)
            .map(|i| &*Box::leak(format!("hier_rack{i:02}_budget_w").into_boxed_str()))
            .collect()
    })[r]
}

/// Level lookup over the node array.
struct NodesView<'a>(&'a [Node]);

impl LevelView for NodesView<'_> {
    fn level_of(&self, node: NodeId) -> Level {
        self.0[node.0 as usize].level()
    }
    fn highest_of(&self, node: NodeId) -> Level {
        self.0[node.0 as usize].highest_level()
    }
}

/// The integrated cluster simulation.
///
/// `Clone` produces a deep, independent copy of every piece of mutable
/// state (RNG streams, columns, wheel, controller, journal, observability)
/// while sharing the immutable `Arc<PowerModel>`/`Arc<NodeSpec>` tables —
/// the substrate of the what-if snapshot/branch subsystem (`ppc-whatif`).
/// A branched clone stepped N ticks is bit-identical to the original
/// stepped N ticks, fingerprint for fingerprint.
#[derive(Clone)]
pub struct ClusterSim {
    spec: ClusterSpec,
    clock: TickClock,
    /// Per-node power model (group-shared Arcs).
    models: Vec<Arc<PowerModel>>,
    nodes: Vec<Node>,
    scheduler: Scheduler,
    queue: JobQueue,
    generator: JobGenerator,
    /// Fixed-trace replay source (replaces the generator when present).
    trace_source: Option<TraceSource>,
    agents: Vec<ProfilingAgent>,
    meter: SystemPowerMeter,
    collector: Collector,
    manager: Option<PowerManager>,
    /// Alternative control architecture: the related-work proportional
    /// budget controller (mutually exclusive with `manager`).
    budget_controller: Option<ProportionalBudgetController>,
    /// The hierarchical control plane: per-rack sub-managers under
    /// delegated budgets (mutually exclusive with both of the above).
    hierarchy: Option<HierarchicalManager>,
    /// Hierarchy instruments (`Some` only for multi-rack hierarchies).
    hier_i: Option<HierInstruments>,
    /// Per-rack job-observation slices, re-split from `cached_obs`
    /// whenever it is rebuilt (multi-rack hierarchy only).
    rack_obs: Vec<Vec<JobObservation>>,
    /// Per-rack true power snapshot taken at the top of the control
    /// cycle (multi-rack hierarchy only).
    scratch_rack_true: Vec<f64>,
    /// Per-rack collector coverage surfaced from the multi-rack fan-out
    /// for the health rollup (multi-rack hierarchy only).
    scratch_rack_cov: Vec<f64>,
    /// Per-rack Green/Yellow/Red states mapped into rollup zones
    /// (multi-rack hierarchy only).
    scratch_rack_zone: Vec<ZoneState>,
    /// Fleet health plane: hierarchical rollups, quantile sketches and
    /// SLO burn-rate alerting. Fingerprinted into the determinism gate.
    health: HealthPlane,
    true_power: TimeSeries,
    finished: Vec<JobRecord>,
    cost_meter: CycleCostMeter,
    commands_applied: u64,
    /// `(state, at)` log of control-cycle classifications.
    state_log: Vec<(SimTime, PowerState)>,
    /// Earliest instant the next job may be submitted (think time).
    next_submit_at: SimTime,
    arrival_rng: ppc_simkit::DetRng,
    /// Bounded audit trail of notable events.
    journal: Journal,
    /// Power state at the previous control cycle (for edge detection).
    last_state: Option<PowerState>,
    /// Peak die temperature seen so far, °C (thermal model only).
    peak_temp_c: f64,
    /// `∫ mean relative-failure-rate dt` (reference = ambient), in
    /// rate-seconds (thermal model only).
    failure_integral: f64,
    /// Worker-pool override (`None` = the process-global pool). Explicit
    /// pools let tests prove worker-count invariance of the traces.
    pool: Option<Arc<WorkerPool>>,
    /// Fault injection (`None` = a perfectly healthy machine).
    faults: Option<FaultState>,
    /// Nodes removed permanently via [`ClusterSim::decommission_node`]:
    /// the fault schedule was generated before they left, so its pending
    /// edges for them (a reboot above all) must be ignored.
    decommissioned: BTreeSet<NodeId>,
    /// Observability: span tree, instruments, flight recorder, profiler.
    obs: ObsHub,
    /// Pre-registered instrument handles into `obs.metrics`.
    obs_i: ObsInstruments,
    /// Requested evaluation mode (`Incremental` may be forced to the
    /// dense path at runtime; see [`ClusterSim::incremental_active`]).
    eval_mode: EvalMode,
    /// Dense per-node columns (power, speed, down, stamps) + dirty set.
    columns: NodeColumns,
    /// Timer wheel carrying the arrival gate and the control-cycle period.
    wheel: TimeWheel<WheelEvent>,
    /// Completed ticks; the tick being computed inside `step()` is
    /// `tick_index + 1` and stamps `now1 = tick · τ`.
    tick_index: u64,
    /// Whether the think-time gate is open (wheel-driven mirror of
    /// `next_submit_at`).
    arrival_gate_open: bool,
    /// Last seen phase index per running job (phase-boundary detection).
    phase_sigs: BTreeMap<JobId, usize>,
    /// Last tick each node's agent produced (or had its baseline advanced
    /// to) a sample; 0 = never.
    last_sampled_tick: Vec<u64>,
    /// Last tick each node's operating state was (re)materialized — the
    /// moment its state may have changed. A candidate whose
    /// `last_sampled_tick` predates this was outside the candidate set
    /// when the change landed (SLA protection): its next sample must
    /// accumulate the whole gap for real instead of replaying identical
    /// intervals.
    state_epoch: Vec<u64>,
    /// Nodes real-sampled last cycle (lazy regime): their collector
    /// prev-power view settles this cycle (dense re-ingestion of the
    /// identical sample shifts `prev := latest`; `refresh` reproduces it).
    settle_pending: Vec<u32>,
    /// Nodes that must be real-sampled *this* cycle even if clean: SLA
    /// rejoiners (their baseline spans the protection window) and staged
    /// follow-ups from `resample_next`.
    resample_now: Vec<u32>,
    /// Forced re-samples staged for the next cycle: a sample whose delta
    /// did not span exactly one tick (first-ever sample, post-protection
    /// gap) produces a value the next dense sample would not repeat.
    resample_next: Vec<u32>,
    /// Memoized per-node saving predictions for observation building.
    obs_cache: ppc_core::NodeObsCache,
    /// Cached job observations for the lazy (fault-free) control path.
    cached_obs: Vec<JobObservation>,
    /// Forces an observation rebuild regardless of the dirty set (job
    /// finished, candidate set changed).
    obs_stale: bool,
    /// Whether the previous tick's dirty set was non-empty (the
    /// collector's prev-power needs one extra cycle to stabilize).
    dirty_prev: bool,
    /// Per-tick scratch buffers, reused across ticks so the steady-state
    /// step path performs no per-tick allocation.
    scratch_loads: Vec<OperatingState>,
    scratch_samples: Vec<NodeSample>,
    scratch_views: Vec<BudgetNodeView>,
    scratch_transitions: Vec<FaultTransition>,
    scratch_down: Vec<bool>,
    scratch_dirty: Vec<u32>,
    scratch_events: Vec<WheelEvent>,
    scratch_sampled: Vec<u32>,
    scratch_settle: Vec<u32>,
    /// Node → index into `cached_obs` of the observation containing it
    /// (`u32::MAX` = none); valid between full observation rebuilds.
    obs_slot: Vec<u32>,
    /// Node → run-queue index of its job at the last full observation
    /// rebuild (`u32::MAX` = idle). A touched node mapped here but absent
    /// from `obs_slot` means its job was dropped from the observation list
    /// and may now re-enter: only a full rebuild can re-insert it in order.
    node_runq: Vec<u32>,
    /// `cached_obs` index → run-queue index at the last full rebuild (the
    /// run queue only changes shape on job start/finish, which forces a
    /// full rebuild, so the mapping stays valid in between).
    obs_runq: Vec<u32>,
    /// Per-tick scratch: observation slots to refresh this cycle.
    scratch_slots: Vec<u32>,
}

impl ClusterSim {
    /// Builds an unmanaged cluster (baseline runs, training substrate).
    pub fn new(spec: ClusterSpec) -> Self {
        spec.validate();
        let factory = RngFactory::new(spec.seed);
        let tau = spec.tick.as_secs_f64();
        // One (spec, model) pair per partition, shared by its nodes.
        let mut groups: Vec<(Arc<ppc_node::NodeSpec>, Arc<PowerModel>, u32)> = Vec::new();
        let base = Arc::new(spec.node_spec.clone());
        groups.push((Arc::clone(&base), base.power_model(tau), spec.node_count));
        for g in &spec.extra_groups {
            let gs = Arc::new(g.spec.clone());
            let gm = gs.power_model(tau);
            groups.push((gs, gm, g.count));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(spec.total_nodes() as usize);
        let mut models: Vec<Arc<PowerModel>> = Vec::with_capacity(nodes.capacity());
        let mut next_id = 0u32;
        for (gspec, gmodel, count) in &groups {
            for _ in 0..*count {
                nodes.push(Node::new(
                    NodeId(next_id),
                    Arc::clone(gspec),
                    Arc::clone(gmodel),
                ));
                models.push(Arc::clone(gmodel));
                next_id += 1;
            }
        }
        for &p in &spec.privileged {
            nodes[p.0 as usize].set_privileged(true);
        }
        let admission = if spec.backfill {
            AdmissionPolicy::Backfill
        } else {
            AdmissionPolicy::FifoFirstFit
        };
        let scheduler = Scheduler::new(spec.node_ids(), base.cores()).with_admission(admission);
        let admissible_nprocs = spec.max_nprocs().min(256);
        let generator = JobGenerator::new(factory, spec.class, admissible_nprocs)
            .with_critical_fraction(spec.critical_job_fraction);
        let trace_source = spec
            .job_trace
            .as_ref()
            .map(|entries| TraceSource::new(entries.clone(), factory));
        let agents = spec
            .node_ids()
            .map(|id| ProfilingAgent::new(spec.agent_noise, factory.stream("agent", id.0 as u64)))
            .collect();
        let meter = SystemPowerMeter::new(spec.meter_noise, factory.stream("meter", 0));
        let mut obs = ObsHub::new();
        let obs_i = ObsInstruments::register(&mut obs.metrics);
        let n_total = nodes.len();
        let mut wheel = TimeWheel::new();
        // The control cycle is a fixed-period wheel event, re-armed each
        // tick; arm the first firing.
        wheel.schedule(1, WheelEvent::ControlDue);
        ClusterSim {
            clock: TickClock::new(spec.tick),
            models,
            nodes,
            scheduler,
            queue: JobQueue::new(),
            generator,
            trace_source,
            agents,
            meter,
            collector: Collector::new(),
            manager: None,
            budget_controller: None,
            hierarchy: None,
            hier_i: None,
            rack_obs: Vec::new(),
            scratch_rack_true: Vec::new(),
            scratch_rack_cov: Vec::new(),
            scratch_rack_zone: Vec::new(),
            health: HealthPlane::new(ZoneMap::single_rack()),
            true_power: TimeSeries::new(),
            finished: Vec::new(),
            cost_meter: CycleCostMeter::new(),
            commands_applied: 0,
            state_log: Vec::new(),
            next_submit_at: SimTime::ZERO,
            arrival_rng: factory.stream("arrivals", 0),
            journal: Journal::new(16_384).with_min_severity(Severity::Info),
            last_state: None,
            peak_temp_c: f64::NEG_INFINITY,
            failure_integral: 0.0,
            pool: None,
            faults: None,
            decommissioned: BTreeSet::new(),
            obs,
            obs_i,
            eval_mode: EvalMode::default(),
            columns: NodeColumns::new(n_total),
            wheel,
            tick_index: 0,
            arrival_gate_open: true,
            phase_sigs: BTreeMap::new(),
            last_sampled_tick: vec![0; n_total],
            state_epoch: vec![0; n_total],
            settle_pending: Vec::new(),
            resample_now: Vec::new(),
            resample_next: Vec::new(),
            obs_cache: ppc_core::NodeObsCache::new(),
            cached_obs: Vec::new(),
            obs_stale: true,
            dirty_prev: false,
            scratch_loads: Vec::new(),
            scratch_samples: Vec::new(),
            scratch_views: Vec::new(),
            scratch_transitions: Vec::new(),
            scratch_down: Vec::new(),
            scratch_dirty: Vec::new(),
            scratch_events: Vec::new(),
            scratch_sampled: Vec::new(),
            scratch_settle: Vec::new(),
            obs_slot: vec![u32::MAX; n_total],
            node_runq: vec![u32::MAX; n_total],
            obs_runq: Vec::new(),
            scratch_slots: Vec::new(),
            spec,
        }
    }

    /// Selects the evaluation strategy. `Incremental` (the default) and
    /// `Full` are bit-identical; `Full` exists as the dense reference the
    /// determinism gate and the differential tests compare against.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// True when the dirty-set incremental path drives this run. The
    /// dense path is forced for features incremental evaluation cannot
    /// represent: the budget controller samples every node every cycle,
    /// thermal models integrate every node every tick, and agent sampling
    /// noise draws per-sample RNG that a skipped sample would desync.
    fn incremental_active(&self) -> bool {
        self.eval_mode == EvalMode::Incremental
            && self.budget_controller.is_none()
            && !self.thermal_enabled()
            && self.spec.agent_noise == NoiseModel::NONE
    }

    /// True when the fault-free lazy control regime may cache job
    /// observations across clean ticks: fault injection rebuilds the
    /// staleness/coverage view every cycle, and a meter that can drop
    /// readings skips cycles, widening the next sample's interval in a
    /// way a cached observation could not represent.
    fn lazy_control_ok(&self) -> bool {
        self.faults.is_none() && self.spec.meter_noise.dropout_prob == 0.0
    }

    /// First tick whose start instant `(T−1)·τ` reaches `at` — when the
    /// think-time gate scheduled for `at` opens.
    fn gate_open_tick(at: SimTime, tau: SimDuration) -> u64 {
        let tau_ms = tau.as_millis().max(1);
        at.as_millis().div_ceil(tau_ms) + 1
    }

    /// The dense node columns (power/speed/down/stamps + dirty set).
    pub fn columns(&self) -> &NodeColumns {
        &self.columns
    }

    /// Applies a DVFS level to a node and keeps the derived columns
    /// coherent: the speed column updates immediately (job progress reads
    /// it next tick, exactly when a dense rebuild would see the new
    /// level), while the power change is staged dirty for the next tick
    /// (this tick's power was already summed before actuation).
    fn actuate_level(&mut self, node: NodeId, level: Level) {
        self.nodes[node.0 as usize]
            .set_level(level)
            // ppc-lint: allow(panic-path): candidates are never privileged and levels come from the node's own ladder
            .expect("commands are validated against the ladder");
        let speed = self.nodes[node.0 as usize].relative_speed();
        self.columns.set_speed(node, speed);
        self.columns.dirty.mark_next(node);
    }

    /// Attaches a fault-injection schedule. Node crashes evict and requeue
    /// the hosted job (up to the injection's requeue cap), remove the node
    /// from scheduling, telemetry, and the candidate set, and rejoin it at
    /// the lowest DVFS level on reboot. Hangs freeze the DVFS actuator
    /// (commands fail and retry with backoff); silences and partitions
    /// stop agent samples, driving the manager's staleness/coverage
    /// fallback.
    ///
    /// # Panics
    /// Panics if the schedule targets nodes outside the cluster.
    pub fn with_faults(mut self, injection: FaultInjection) -> Self {
        let engine = FaultEngine::new(&injection.schedule, self.spec.total_nodes());
        self.faults = Some(FaultState {
            engine,
            requeue_cap: injection.requeue_cap,
            staleness_limit: injection.staleness_limit,
            jobs_requeued: 0,
            jobs_failed: 0,
            commands_failed: 0,
            retries: Vec::new(),
            fresh: BTreeSet::new(),
        });
        self
    }

    /// Overrides the worker pool used for node updates and power sums
    /// (default: the process-global pool). Results are bit-identical for
    /// any pool, by the pool's determinism contract.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a power manager (built by the caller from a
    /// [`ppc_core::ManagerConfig`] and node classification).
    ///
    /// # Panics
    /// Panics if a budget controller is already attached.
    pub fn with_manager(mut self, manager: PowerManager) -> Self {
        assert!(
            self.budget_controller.is_none() && self.hierarchy.is_none(),
            "manager, hierarchy and budget controller are mutually exclusive"
        );
        self.manager = Some(manager);
        self
    }

    /// Attaches the related-work proportional-budget controller instead of
    /// the paper's power manager (architecture baseline: monitors *every*
    /// node, splits the budget proportionally each cycle, job-blind).
    ///
    /// # Panics
    /// Panics if a power manager is already attached.
    pub fn with_budget_controller(mut self, controller: ProportionalBudgetController) -> Self {
        assert!(
            self.manager.is_none() && self.hierarchy.is_none(),
            "manager, hierarchy and budget controller are mutually exclusive"
        );
        self.budget_controller = Some(controller);
        self
    }

    /// The attached budget controller, if any.
    pub fn budget_controller(&self) -> Option<&ProportionalBudgetController> {
        self.budget_controller.as_ref()
    }

    /// Attaches the hierarchical control plane (built by the caller from
    /// a facility [`ppc_core::ManagerConfig`] and [`ppc_core::Topology`]).
    /// Installs the topology's shard-contiguous layout on the node
    /// columns so per-rack fleet sums stay dense index-order folds.
    /// Hierarchy instruments register only on multi-rack topologies: a
    /// single-rack hierarchy is the flat architecture and must
    /// fingerprint like it.
    ///
    /// # Panics
    /// Panics if another controller is attached or the topology does not
    /// cover the cluster exactly.
    pub fn with_hierarchy(mut self, hierarchy: HierarchicalManager) -> Self {
        assert!(
            self.manager.is_none() && self.budget_controller.is_none(),
            "manager, hierarchy and budget controller are mutually exclusive"
        );
        assert_eq!(
            hierarchy.topology().node_count() as usize,
            self.nodes.len(),
            "topology must cover the cluster exactly"
        );
        let racks = hierarchy.topology().racks();
        let shards: Vec<(u32, u32)> = (0..racks)
            .map(|r| {
                let range = hierarchy.topology().rack_nodes(r);
                (range.start, range.end)
            })
            .collect();
        self.columns.set_shards(shards);
        if !hierarchy.is_single_rack() {
            self.hier_i = Some(HierInstruments::register(&mut self.obs.metrics, racks));
            // The health rollup mirrors the delegation topology. A
            // single-rack hierarchy keeps the flat single-zone map so its
            // health fingerprints stay bit-equal to the flat manager's.
            let topo = hierarchy.topology();
            let map = ZoneMap::new((0..racks).map(|r| topo.row_of_rack(r) as u32).collect());
            self.health = HealthPlane::new(map);
        }
        self.rack_obs = vec![Vec::new(); racks];
        self.hierarchy = Some(hierarchy);
        self
    }

    /// The attached hierarchical manager, if any.
    pub fn hierarchy(&self) -> Option<&HierarchicalManager> {
        self.hierarchy.as_ref()
    }

    /// Mutable access to the hierarchical manager (what-if mutations).
    pub fn hierarchy_mut(&mut self) -> Option<&mut HierarchicalManager> {
        self.hierarchy.as_mut()
    }

    /// Control statistics of whichever control plane is attached — flat
    /// manager or hierarchy (`None` for unmanaged and budget runs).
    pub fn control_stats(&self) -> Option<ManagerStats> {
        self.manager
            .as_ref()
            .map(|m| m.stats())
            .or_else(|| self.hierarchy.as_ref().map(|h| h.stats()))
    }

    /// The provision capability currently in force in the attached
    /// control plane (`None` for unmanaged and budget runs).
    pub fn provision_in_force_w(&self) -> Option<f64> {
        self.manager
            .as_ref()
            .map(|m| m.config().p_provision_w)
            .or_else(|| self.hierarchy.as_ref().map(|h| h.config().p_provision_w))
    }

    /// The fleet health plane (rollups, sketches, SLO alert journal).
    pub fn health(&self) -> &HealthPlane {
        &self.health
    }

    /// Enables or disables health-plane observation (the bench harness
    /// measures rollup overhead by differencing the two).
    pub fn set_health_enabled(&mut self, enabled: bool) {
        self.health.set_enabled(enabled);
    }

    /// The health plane's three determinism-gate fingerprints
    /// (rollup tree / sketches / alert journal).
    pub fn health_fingerprints(&self) -> HealthFingerprints {
        self.health.fingerprints()
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The true (unmetered) power trace.
    pub fn true_power(&self) -> &TimeSeries {
        &self.true_power
    }

    /// The facility meter (noisy readings, history).
    pub fn meter(&self) -> &SystemPowerMeter {
        &self.meter
    }

    /// Finished-job records, in completion order.
    pub fn finished(&self) -> &[JobRecord] {
        &self.finished
    }

    /// The attached manager, if any.
    pub fn manager(&self) -> Option<&PowerManager> {
        self.manager.as_ref()
    }

    /// Mutable access to the manager (runtime candidate-set changes).
    pub fn manager_mut(&mut self) -> Option<&mut PowerManager> {
        self.manager.as_mut()
    }

    /// Measured mean management cost per control cycle, seconds.
    pub fn mean_mgmt_cost_secs(&self) -> f64 {
        self.cost_meter.mean_cycle_secs()
    }

    /// Throttling commands actually applied to nodes.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }

    /// The fault engine, if fault injection is attached.
    pub fn fault_engine(&self) -> Option<&FaultEngine> {
        self.faults.as_ref().map(|f| &f.engine)
    }

    /// Jobs evicted from dead nodes and successfully requeued (0 without
    /// fault injection).
    pub fn jobs_requeued(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.jobs_requeued)
    }

    /// Jobs dropped after exhausting the requeue cap (0 without faults).
    pub fn jobs_failed(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.jobs_failed)
    }

    /// DVFS commands whose first send failed against a dead or frozen
    /// actuator (0 without faults).
    pub fn commands_failed(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.commands_failed)
    }

    /// The availability report for the run so far (`None` without fault
    /// injection). Open outages are charged up to the current instant.
    pub fn availability_report(&self) -> Option<AvailabilityReport> {
        let fs = self.faults.as_ref()?;
        let now = self.clock.now();
        let stats = fs.engine.stats_at(now);
        let (red_cycles, conservative_cycles, total_cycles) = match self.control_stats() {
            Some(s) => (s.red_cycles, s.conservative_cycles, s.cycles),
            None => {
                let red = self
                    .state_log
                    .iter()
                    .filter(|(_, s)| *s == PowerState::Red)
                    .count() as u64;
                (red, 0, self.state_log.len() as u64)
            }
        };
        Some(AvailabilityReport::compute(&AvailabilityInputs {
            crashes: stats.crashes,
            hangs: stats.hangs,
            silences: stats.silences,
            repairs: stats.repairs,
            node_seconds_lost: stats.node_seconds_lost,
            repair_secs_total: stats.repair_secs_total,
            jobs_requeued: fs.jobs_requeued,
            jobs_failed: fs.jobs_failed,
            commands_failed: fs.commands_failed,
            red_cycles,
            conservative_cycles,
            total_cycles,
            node_count: self.spec.total_nodes(),
            window_secs: now.as_secs_f64(),
        }))
    }

    /// The bounded event journal (job lifecycle, state flips, thresholds).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The observability hub: span tree, metrics registry, flight
    /// recorder, and self-profiler.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Mutable hub access (exporters drain the profiler; tests poke
    /// instruments).
    pub fn obs_mut(&mut self) -> &mut ObsHub {
        &mut self.obs
    }

    /// FNV-1a fingerprint of every closed control-cycle span, for the
    /// determinism gate (bit-identical across worker-pool widths).
    pub fn span_fingerprint(&self) -> u64 {
        self.obs.spans.fingerprint()
    }

    /// FNV-1a fingerprint of the metrics registry, for the determinism
    /// gate.
    pub fn metrics_fingerprint(&self) -> u64 {
        self.obs.metrics.fingerprint()
    }

    /// Control-cycle state classifications (time, state).
    pub fn state_log(&self) -> &[(SimTime, PowerState)] {
        &self.state_log
    }

    /// Node power levels (index = node id), for assertions and reports.
    pub fn node_levels(&self) -> Vec<Level> {
        self.nodes.iter().map(Node::level).collect()
    }

    /// Fraction of nodes currently allocated to jobs.
    pub fn utilization(&self) -> f64 {
        self.scheduler.utilization()
    }

    /// Number of running jobs.
    pub fn running_jobs(&self) -> usize {
        self.scheduler.running_jobs().len()
    }

    /// Number of queued (not yet placed) jobs.
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// True while `id` sits in the pending queue (what-if admission
    /// checks: an injected job still queued at the horizon was denied a
    /// placement).
    pub fn job_is_queued(&self, id: JobId) -> bool {
        self.queue.iter().any(|j| j.id() == id)
    }

    /// Completed ticks since construction (`now() == tick_index · τ`).
    pub fn tick_index(&self) -> u64 {
        self.tick_index
    }

    /// Replaces the bounded journal ring with one of `capacity` events
    /// (builder; call before stepping — any prior contents are discarded).
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal = Journal::new(capacity).with_min_severity(Severity::Info);
        self
    }

    /// Submits a fully specified hypothetical job to the queue — the
    /// what-if "admit this job mix" mutation. The job is synthesized by
    /// the run's own generator (its phase jitter comes from the same
    /// id-keyed stream a generated job would use) and queued behind any
    /// existing backlog; the scheduler places it on the next tick.
    ///
    /// Call at a tick boundary (between [`ClusterSim::step`] calls).
    pub fn inject_job(
        &mut self,
        app: NpbApp,
        class: Class,
        nprocs: u32,
        priority: JobPriority,
    ) -> JobId {
        let now = self.clock.now();
        let job = self.generator.synthesize(app, class, nprocs, priority, now);
        let id = job.id();
        self.journal.record_with(now, Severity::Info, "whatif", || {
            format!("{id} injected: {app} class {class} x{nprocs} ({priority:?})")
        });
        self.queue.push(job);
        id
    }

    /// Permanently removes a node from the cluster — the what-if "drop N
    /// nodes" mutation. Mirrors the fault path's crash handling (the job
    /// hosted on the node is evicted and requeued, the node leaves the
    /// scheduler, telemetry, and the candidate set) except that no reboot
    /// ever rejoins it. Returns `false` if the node is already down.
    ///
    /// Call at a tick boundary (between [`ClusterSim::step`] calls): the
    /// dirty marks are staged for the next tick.
    ///
    /// # Panics
    /// Panics if `n` is outside the cluster.
    pub fn decommission_node(&mut self, n: NodeId) -> bool {
        assert!(
            (n.0 as usize) < self.nodes.len(),
            "node {} outside the cluster",
            n.0
        );
        if self.columns.is_down(n) {
            return false;
        }
        let now = self.clock.now();
        let tick = self.tick_index;
        let dt = self.clock.dt_secs();
        let incremental = self.incremental_active();
        if let Some(fs) = self.faults.as_mut() {
            // Whatever command we owed the node is moot.
            fs.retries.retain(|r| r.node != n);
        }
        if let Some(mut job) = self.scheduler.evict_job_on(n) {
            // Release dynamic SLA protection, mirroring the completion
            // path: the job is no longer running.
            if job.priority() == JobPriority::Critical {
                for &m in job.nodes() {
                    if self.spec.privileged.contains(&m) {
                        continue;
                    }
                    self.nodes[m.0 as usize].set_privileged(false);
                    if let Some(mgr) = self.manager.as_mut() {
                        mgr.sets_mut().set_privileged(m, false);
                    } else if let Some(h) = self.hierarchy.as_mut() {
                        h.set_privileged(m, false);
                    }
                    // The node rejoins the candidate set between ticks: the
                    // lazy regime must take a real sample next cycle (its
                    // delta spans the whole protection window).
                    if incremental && m != n && self.lazy_control_ok() {
                        self.resample_now.push(m.0);
                    }
                }
            }
            // Co-members lose their load starting next tick; phase
            // tracking ends here.
            for &m in job.nodes() {
                self.columns.dirty.mark_next(m);
            }
            self.phase_sigs.remove(&job.id());
            self.obs_stale = true;
            let id = job.id();
            job.requeue();
            let attempt = job.requeues();
            self.queue.push_front(job);
            self.journal.record_with(now, Severity::Warn, "whatif", || {
                format!(
                    "{id} evicted: node {} decommissioned, requeued (attempt {attempt})",
                    n.0
                )
            });
        }
        self.scheduler.set_node_down(n);
        if incremental {
            // Freeze the node's counters at the boundary: catch up the
            // quiescent interval it sat clean (same state throughout, so
            // the closed form is exact) before zeroing its power entry.
            let behind = tick - self.columns.stamp_of(n);
            if behind > 0 {
                self.nodes[n.0 as usize].catch_up(dt, behind);
                self.columns.set_stamp(n, tick);
            }
        }
        self.columns.set_down(n);
        self.columns.dirty.mark_next(n);
        self.collector.forget(n);
        if let Some(mgr) = self.manager.as_mut() {
            mgr.note_node_down(n);
        } else if let Some(h) = self.hierarchy.as_mut() {
            h.note_node_down(n);
        }
        // The fault schedule predates the decommission: mask its pending
        // edges for this node (a reboot must not resurrect it).
        self.decommissioned.insert(n);
        self.journal.record_with(now, Severity::Warn, "whatif", || {
            format!("node {} decommissioned", n.0)
        });
        true
    }

    /// Replays the fault schedule up to `now` and reacts to every edge:
    /// crashed nodes are evicted, de-scheduled, forgotten by telemetry and
    /// dropped from `A_candidate`; rebooted nodes rejoin at the lowest
    /// DVFS level and re-enter the candidate set as degraded (steady-green
    /// recovery promotes them back one level at a time).
    fn fault_tick(&mut self, now: SimTime, dt: f64, tick: u64, incremental: bool) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        self.scratch_transitions.clear();
        self.scratch_transitions
            .extend_from_slice(fs.engine.advance_traced(now, &mut self.obs.spans));
        for i in 0..self.scratch_transitions.len() {
            let edge = self.scratch_transitions[i];
            let (FaultTransition::NodeDown(n)
            | FaultTransition::NodeUp(n)
            | FaultTransition::HangStart(n)
            | FaultTransition::HangEnd(n)
            | FaultTransition::SilenceStart(n)
            | FaultTransition::SilenceEnd(n)) = edge;
            if self.decommissioned.contains(&n) {
                // Decommissioned nodes are gone for good: the schedule's
                // remaining edges for them are void.
                continue;
            }
            match edge {
                FaultTransition::NodeDown(n) => {
                    // The node is dead: whatever command we owed it is moot.
                    fs.retries.retain(|r| r.node != n);
                    if let Some(mut job) = self.scheduler.evict_job_on(n) {
                        // Release dynamic SLA protection, mirroring the
                        // completion path: the job is no longer running.
                        if job.priority() == JobPriority::Critical {
                            for &m in job.nodes() {
                                if self.spec.privileged.contains(&m) {
                                    continue;
                                }
                                self.nodes[m.0 as usize].set_privileged(false);
                                if let Some(mgr) = self.manager.as_mut() {
                                    mgr.sets_mut().set_privileged(m, false);
                                } else if let Some(h) = self.hierarchy.as_mut() {
                                    h.set_privileged(m, false);
                                }
                            }
                        }
                        // The dead node's co-members lose their load this
                        // very tick; the job's phase tracking ends here
                        // (a later restart re-registers it at phase 0).
                        for &m in job.nodes() {
                            self.columns.dirty.mark(m);
                        }
                        self.phase_sigs.remove(&job.id());
                        self.obs_stale = true;
                        let id = job.id();
                        if job.requeues() >= fs.requeue_cap {
                            fs.jobs_failed += 1;
                            let cap = fs.requeue_cap;
                            self.journal.record_with(now, Severity::Warn, "fault", || {
                                format!(
                                    "{id} failed: node {} died, requeue cap {cap} exhausted",
                                    n.0
                                )
                            });
                        } else {
                            job.requeue();
                            let attempt = job.requeues();
                            self.queue.push_front(job);
                            fs.jobs_requeued += 1;
                            self.journal.record_with(now, Severity::Warn, "fault", || {
                                format!(
                                    "{id} evicted: node {} died, requeued (attempt {attempt})",
                                    n.0
                                )
                            });
                        }
                    }
                    self.scheduler.set_node_down(n);
                    if incremental {
                        // Freeze the node's counters at the last pre-crash
                        // tick: catch up the quiescent interval it sat
                        // clean (same state throughout, so the closed form
                        // is exact), then zero its power column entry.
                        let behind = tick - 1 - self.columns.stamp_of(n);
                        if behind > 0 {
                            self.nodes[n.0 as usize].catch_up(dt, behind);
                            self.columns.set_stamp(n, tick - 1);
                        }
                    }
                    self.columns.set_down(n);
                    self.columns.dirty.mark(n);
                    self.collector.forget(n);
                    if let Some(mgr) = self.manager.as_mut() {
                        mgr.note_node_down(n);
                    } else if let Some(h) = self.hierarchy.as_mut() {
                        h.note_node_down(n);
                    }
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} down", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} down", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::NodeUp(n) => {
                    self.scheduler.set_node_up(n);
                    // The reboot resumes evaluation from here: the next
                    // materialization has nothing to catch up (the outage
                    // accrued no counters).
                    self.columns.set_up(n, tick.saturating_sub(1));
                    self.columns.dirty.mark(n);
                    let node = &mut self.nodes[n.0 as usize];
                    if !node.is_privileged() {
                        // ppc-lint: allow(panic-path): guarded by the is_privileged() check one line up
                        node.force_lowest().expect("node checked not privileged");
                    }
                    let speed = node.relative_speed();
                    self.columns.set_speed(n, speed);
                    if let Some(mgr) = self.manager.as_mut() {
                        mgr.note_node_rejoined(n);
                    } else if let Some(h) = self.hierarchy.as_mut() {
                        h.note_node_rejoined(n);
                    }
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} rebooted, rejoins at lowest level", n.0)
                    });
                }
                FaultTransition::HangStart(n) => {
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} DVFS actuator frozen", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} actuator frozen", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::HangEnd(n) => {
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} DVFS actuator thawed", n.0)
                    });
                }
                FaultTransition::SilenceStart(n) => {
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} telemetry dark", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} telemetry dark", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::SilenceEnd(n) => {
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} telemetry restored", n.0)
                    });
                }
            }
        }
        self.faults = Some(fs);
    }

    /// Advances the simulation by one tick.
    pub fn step(&mut self) {
        let dt = self.clock.dt_secs();
        let now0 = self.clock.now();
        let tick = self.tick_index + 1;
        let incremental = self.incremental_active();
        let lazy_step = incremental
            && (self.manager.is_some() || self.hierarchy.is_some())
            && self.lazy_control_ok();

        // Tick boundary: promote dirty marks staged during tick−1 (phase
        // boundaries, level commands), remembering whether tick−1 itself
        // had dirty work (the collector's prev-power view takes one more
        // cycle to stabilize after a change).
        self.dirty_prev = !self.columns.dirty.is_empty();
        self.columns.dirty.begin_tick();
        if incremental && tick == 1 {
            // Nothing has ever been evaluated: everything is dirty.
            for id in 0..self.nodes.len() as u32 {
                self.columns.dirty.mark(NodeId(id));
            }
        }

        // Drain the timer wheel up to this tick.
        let mut events = std::mem::take(&mut self.scratch_events);
        self.wheel.pop_due_into(tick, &mut events);
        let mut control_due = false;
        for ev in &events {
            match ev {
                WheelEvent::ArrivalGate => self.arrival_gate_open = true,
                WheelEvent::ControlDue => control_due = true,
            }
        }
        self.scratch_events = events;
        debug_assert!(control_due, "the control period is re-armed every tick");
        debug_assert_eq!(
            self.arrival_gate_open,
            now0 >= self.next_submit_at,
            "wheel arrival gate must mirror the think-time deadline"
        );

        // 0. Fault edges strike before anything else this tick, so a node
        //    that dies now neither hosts a new job nor contributes power.
        self.fault_tick(now0, dt, tick, incremental);

        // 1. Job arrival and placement. With a replay trace, jobs arrive
        //    at their recorded times; otherwise an empty queue is refilled
        //    (paper protocol), gated by the think-time gap — a one-shot
        //    wheel event rather than a per-tick deadline compare.
        match self.trace_source.as_mut() {
            Some(src) => {
                for job in src.due_jobs(now0) {
                    self.queue.push(job);
                }
            }
            None => {
                if self.arrival_gate_open
                    && self
                        .generator
                        .refill_to(&mut self.queue, self.spec.queue_depth, now0)
                    && !self.spec.think_time_mean.is_zero()
                {
                    let gap = self
                        .arrival_rng
                        .exponential(self.spec.think_time_mean.as_secs_f64());
                    self.next_submit_at = now0 + SimDuration::from_secs_f64(gap);
                    self.arrival_gate_open = false;
                    let open_at =
                        Self::gate_open_tick(self.next_submit_at, self.spec.tick).max(tick + 1);
                    self.wheel.schedule(open_at, WheelEvent::ArrivalGate);
                }
            }
        }
        let started = self.scheduler.try_start(&mut self.queue, now0);
        if !started.is_empty() {
            // `try_start` pushes placed jobs in start order, so the newly
            // started jobs are exactly the run-queue tail — no per-id scan.
            let running = self.scheduler.running_jobs();
            let newly = &running[running.len() - started.len()..];
            debug_assert!(
                newly.iter().map(|j| j.id()).eq(started.iter().copied()),
                "started ids must match the run-queue tail"
            );
            let protect_critical = self.spec.critical_job_fraction > 0.0;
            for job in newly {
                self.journal.record_with(now0, Severity::Info, "job", || {
                    format!(
                        "{} started: {} class {} x{} on {} nodes ({:?})",
                        job.id(),
                        job.app(),
                        job.class(),
                        job.nprocs(),
                        job.nodes().len(),
                        job.priority()
                    )
                });
                // Member loads change this very tick; phase tracking
                // starts at the job's current phase index.
                self.phase_sigs.insert(job.id(), job.phase_index());
                for &n in job.nodes() {
                    self.columns.dirty.mark(n);
                }
                self.obs_stale = true;
                // SLA protection: a critical job's nodes join
                // A_uncontrollable for its lifetime (the paper's dynamic
                // candidate set).
                if protect_critical && job.priority() == JobPriority::Critical {
                    for &n in job.nodes() {
                        let i = n.0 as usize;
                        if self.nodes[i].is_privileged() {
                            // Already protected (statically privileged, or
                            // shared start tick with another critical job).
                            continue;
                        }
                        // The node leaves the candidate set this tick; the
                        // dense path sampled it through tick−1. Advance its
                        // agent baseline over the clean window against the
                        // *old* state now, so its post-protection sample
                        // spans exactly the protection gap, as dense would.
                        if lazy_step {
                            let last = self.last_sampled_tick[i];
                            if self.agents[i].is_primed()
                                && last >= self.state_epoch[i]
                                && last + 1 < tick
                            {
                                let state = *self.nodes[i].state();
                                self.agents[i].advance_baseline(&state, dt, tick - 1 - last);
                                self.last_sampled_tick[i] = tick - 1;
                            }
                        }
                        let node = &mut self.nodes[i];
                        // SLA work gets full performance: restore the node
                        // to its top level (it may carry a degradation from
                        // earlier capping), then freeze it.
                        let top = node.highest_level();
                        // ppc-lint: allow(panic-path): the node is unfrozen here; set_level only errors on privileged nodes
                        node.set_level(top).expect("node checked not privileged");
                        node.set_privileged(true);
                        let speed = self.nodes[n.0 as usize].relative_speed();
                        self.columns.set_speed(n, speed);
                        if let Some(m) = self.manager.as_mut() {
                            m.sets_mut().set_privileged(n, true);
                        } else if let Some(h) = self.hierarchy.as_mut() {
                            h.set_privileged(n, true);
                        }
                    }
                }
            }
        }

        // 2. Node operating states for this tick, derived from the phase
        //    each node's job is in.
        if incremental {
            self.materialize_dirty(dt, tick);
        } else {
            // Dense reference: compute every node's load serially (borrows
            // the scheduler), apply to nodes in parallel via the pool. The
            // load buffer is a scratch field reused across ticks.
            self.scratch_loads.clear();
            self.scratch_loads.extend(self.nodes.iter().map(
                |n| match self.scheduler.load_on(n.id()) {
                    Some(load) => OperatingState {
                        cpu_util: load.cpu_util,
                        mem_used_bytes: load.mem_bytes,
                        nic_bytes: (load.nic_fraction * n.spec().nic.bandwidth_bytes_per_sec * dt)
                            as u64,
                    },
                    None => OperatingState::IDLE,
                },
            ));
            // Down nodes are dark: they neither advance counters nor draw
            // power until their reboot (if any). The columns' down flag
            // mirrors every fault-engine edge the same tick it strikes
            // (see `fault_tick`) and additionally covers decommissioned
            // nodes, which the engine never sees.
            self.scratch_down.clear();
            let columns = &self.columns;
            self.scratch_down
                .extend((0..self.nodes.len() as u32).map(|i| columns.is_down(NodeId(i))));
            let pool: &WorkerPool = match self.pool.as_deref() {
                Some(p) => p,
                None => WorkerPool::global(),
            };
            let loads = &self.scratch_loads;
            let down = &self.scratch_down;
            pool.for_each_mut(&mut self.nodes, |i, node| {
                if !down[i] {
                    node.run_interval(loads[i], dt);
                }
            });
        }

        // 3. Jobs progress at the min rate over their members' speeds.
        //    The speed column is maintained at every level mutation, so no
        //    per-tick rebuild is needed.
        let now1 = self.clock.advance();
        let columns = &self.columns;
        let speed_of = |n: NodeId| columns.speed_of(n);
        let mut records = self.scheduler.advance(dt, now1, &speed_of);
        // Release SLA protection when critical jobs complete — unless the
        // node is statically privileged in the cluster spec.
        for r in &records {
            if r.priority == JobPriority::Critical {
                for &n in &r.nodes {
                    if self.spec.privileged.contains(&n) {
                        continue;
                    }
                    self.nodes[n.0 as usize].set_privileged(false);
                    if let Some(m) = self.manager.as_mut() {
                        m.sets_mut().set_privileged(n, false);
                    } else if let Some(h) = self.hierarchy.as_mut() {
                        h.set_privileged(n, false);
                    }
                    // The node rejoins the candidate set mid-tick: the
                    // dense path samples it this very cycle, so the lazy
                    // path must take a real sample too (its delta spans
                    // the whole protection window).
                    if lazy_step {
                        self.resample_now.push(n.0);
                    }
                }
            }
        }
        // Finished jobs free their members starting next tick (this
        // tick's load was computed before the advance); phase tracking
        // ends, and cached observations must drop the job now.
        for r in &records {
            self.phase_sigs.remove(&r.id);
            for &n in &r.nodes {
                self.columns.dirty.mark_next(n);
            }
        }
        if !records.is_empty() {
            self.obs_stale = true;
        }
        for r in &records {
            self.journal.record_with(now1, Severity::Info, "job", || {
                format!(
                    "{} finished: T={:.1}s (baseline {:.1}s, throttled {:.0}s)",
                    r.id, r.actual_secs, r.baseline_secs, r.throttled_secs
                )
            });
        }
        self.finished.append(&mut records);
        // Phase boundaries crossed during this advance change member
        // loads starting next tick: stage those members dirty. (Phase
        // boundaries are not wheel-predicted — their timing depends on
        // member speeds, which throttling changes mid-flight.)
        for job in self.scheduler.running_jobs() {
            if let Some(sig) = self.phase_sigs.get_mut(&job.id()) {
                let cur = job.phase_index();
                if *sig != cur {
                    *sig = cur;
                    for &n in job.nodes() {
                        self.columns.dirty.mark_next(n);
                    }
                }
            }
        }

        // 3b. Thermal accounting (extension; the incremental path is only
        //     active without thermal models, where this loop is a no-op).
        if !incremental {
            let mut rate_sum = 0.0;
            let mut thermal_nodes = 0u32;
            for n in &self.nodes {
                let Some(t) = n.temperature_c() else { continue };
                let Some(thermal) = n.spec().thermal else {
                    continue;
                };
                self.peak_temp_c = self.peak_temp_c.max(t);
                let Some(rate) = n.relative_failure_rate(thermal.ambient_c) else {
                    continue;
                };
                rate_sum += rate;
                thermal_nodes += 1;
            }
            if thermal_nodes > 0 {
                self.failure_integral += rate_sum / thermal_nodes as f64 * dt;
            }
        }

        // 4. Power sensing: a straight index-order fold over the dense
        //    power column (downed nodes hold 0.0 — no per-node branch).
        if !incremental {
            // Dense reference: re-evaluate every node's power into the
            // column in parallel first. The fold over the column is
            // bit-identical to the ordered parallel reduction it replaced
            // (that reduction also folded slot results in index order).
            let pool: &WorkerPool = match self.pool.as_deref() {
                Some(p) => p,
                None => WorkerPool::global(),
            };
            let nodes = &self.nodes;
            let down = &self.scratch_down;
            pool.for_each_mut(self.columns.power_fill_mut(), |i, p| {
                *p = if down[i] { 0.0 } else { nodes[i].power_w() };
            });
        }
        let true_power_w = self.columns.fleet_power_w();
        self.true_power.push(now1, true_power_w);
        let reading = self.meter.read(true_power_w, now1);
        match reading {
            MeterReading::Held(w) => {
                self.journal.record_with(now1, Severity::Info, "meter", || {
                    format!("meter dropout: holding last good reading {w:.1} W")
                });
            }
            MeterReading::Gap => {
                self.journal.record_with(now1, Severity::Warn, "meter", || {
                    "meter dropout before any good reading: control cycle skipped".to_string()
                });
            }
            MeterReading::Fresh(_) => {}
        }

        // 5/6. Profiling, collection, control, actuation. A meter gap
        // carries no information: acting on it (the old code fed the
        // controller 0.0 W) would read as maximal headroom and promote
        // every degraded node, so the cycle is skipped instead.
        if let Some(metered_w) = reading.value() {
            if self.manager.is_some() || self.hierarchy.is_some() {
                self.control_cycle(now1, metered_w, dt, tick, incremental);
            } else if self.budget_controller.is_some() {
                self.budget_cycle(now1, metered_w);
            }
        }

        // Re-arm the fixed-period control event and commit the tick.
        self.wheel.schedule(tick + 1, WheelEvent::ControlDue);
        self.tick_index = tick;
    }

    /// Evaluates exactly the dirty nodes for `tick`: catch the device
    /// counters up through `tick − 1` in closed form (the state was
    /// unchanged while the node sat clean — that is what clean means),
    /// run the new interval, and write the power/speed columns.
    ///
    /// In the lazy control regime a dirty candidate's agent baseline is
    /// advanced over the same quiescent window *before* this tick's state
    /// change lands, so its next real sample spans exactly one tick —
    /// precisely what the dense path's per-cycle sampling would produce.
    fn materialize_dirty(&mut self, dt: f64, tick: u64) {
        self.scratch_dirty.clear();
        self.scratch_dirty
            .extend_from_slice(self.columns.dirty.indices());
        let lazy_candidates = if self.lazy_control_ok() {
            self.manager
                .as_ref()
                .map(|m| m.sets())
                .or_else(|| self.hierarchy.as_ref().map(|h| h.sets()))
        } else {
            None
        };
        for k in 0..self.scratch_dirty.len() {
            let id = NodeId(self.scratch_dirty[k]);
            let i = id.0 as usize;
            if self.columns.is_down(id) {
                continue; // frozen until the up edge re-marks it
            }
            if let Some(candidates) = lazy_candidates {
                // Candidate clean since its last sample (its state epoch
                // has not moved past the sample): replay the skipped
                // identical samples' baseline motion in closed form
                // against the *old* state, so this tick's real sample
                // spans exactly one tick — what dense sampling produces.
                // Protected (non-candidate) nodes are deliberately left
                // alone: dense froze their baseline when they left the
                // candidate set, and their rejoin sample must span the gap.
                let last = self.last_sampled_tick[i];
                if last + 1 < tick
                    && last >= self.state_epoch[i]
                    && self.agents[i].is_primed()
                    && candidates.is_candidate(id)
                {
                    let state = *self.nodes[i].state();
                    self.agents[i].advance_baseline(&state, dt, tick - 1 - last);
                    self.last_sampled_tick[i] = tick - 1;
                }
            }
            let behind = tick - 1 - self.columns.stamp_of(id);
            if behind > 0 {
                self.nodes[i].catch_up(dt, behind);
            }
            let load = match self.scheduler.load_on(id) {
                Some(load) => OperatingState {
                    cpu_util: load.cpu_util,
                    mem_used_bytes: load.mem_bytes,
                    nic_bytes: (load.nic_fraction
                        * self.nodes[i].spec().nic.bandwidth_bytes_per_sec
                        * dt) as u64,
                },
                None => OperatingState::IDLE,
            };
            self.nodes[i].run_interval(load, dt);
            let power = self.nodes[i].power_w();
            let speed = self.nodes[i].relative_speed();
            self.columns.materialize(id, power, speed, tick);
            self.state_epoch[i] = tick;
        }
    }

    /// Runs the proportional-budget baseline's cycle: sample **all**
    /// controllable nodes (this architecture has no candidate subset),
    /// split the budget, and apply the resulting absolute levels.
    fn budget_cycle(&mut self, now: SimTime, metered_w: f64) {
        // ppc-lint: allow(panic-path): step() dispatches here only when a budget controller is attached
        let controller = self.budget_controller.as_mut().expect("checked by caller");
        self.obs.spans.open("cycle", now);
        let sample_t = self.obs.profile.start();
        self.obs.spans.open("sample", now);
        self.scratch_views.clear();
        for node in &self.nodes {
            if node.is_privileged() {
                continue;
            }
            // Dead or decommissioned nodes have no agent to sample.
            if self.columns.is_down(node.id()) {
                continue;
            }
            if let Some(fs) = self.faults.as_ref() {
                // Silent nodes produce no samples.
                if fs.engine.is_silent(node.id()) {
                    continue;
                }
            }
            let idx = node.id().0 as usize;
            let Some(sample) = self.agents[idx].sample(node, now) else {
                continue; // dropped sample: the node keeps its level this cycle
            };
            self.collector.ingest(sample);
            self.scratch_views.push(BudgetNodeView {
                node: node.id(),
                level: node.level(),
                highest: node.highest_level(),
                state: sample.state,
                power_w: sample.power_w,
            });
        }
        self.obs
            .spans
            .attr("samples", AttrValue::U64(self.scratch_views.len() as u64));
        self.obs.spans.close(now);
        self.obs.profile.stop("sample", sample_t);
        let control_t = self.obs.profile.start();
        self.obs.spans.open("control", now);
        let models = &self.models;
        let views = &self.scratch_views;
        let (state, commands) = self.cost_meter.measure(|| {
            controller.cycle(metered_w, views, &|n: NodeId| {
                Arc::clone(&models[n.0 as usize])
            })
        });
        self.obs.spans.attr("state", AttrValue::Str(state.name()));
        self.obs
            .spans
            .attr("commands", AttrValue::U64(commands.len() as u64));
        self.obs.spans.close(now);
        self.obs.profile.stop("control", control_t);
        self.state_log.push((now, state));
        let red_entered = state == PowerState::Red && self.last_state != Some(PowerState::Red);
        if self.last_state != Some(state) {
            self.journal.record_with(
                now,
                if state == PowerState::Red {
                    Severity::Warn
                } else {
                    Severity::Info
                },
                "state",
                || {
                    format!(
                        "budget controller: state -> {state} at {:.2} kW",
                        metered_w / 1e3
                    )
                },
            );
            self.last_state = Some(state);
        }
        let actuate_t = self.obs.profile.start();
        self.obs.spans.open("actuate", now);
        self.obs
            .spans
            .attr("commands", AttrValue::U64(commands.len() as u64));
        self.process_retries(now);
        for cmd in &commands {
            self.apply_command(cmd.node, cmd.level, now);
        }
        self.obs.spans.close(now);
        self.obs.profile.stop("actuate", actuate_t);
        self.obs.metrics.inc(self.obs_i.cycles, 1);
        self.obs.metrics.set(self.obs_i.metered_power_w, metered_w);
        self.obs
            .metrics
            .observe(self.obs_i.selection_size, commands.len() as f64);
        if state == PowerState::Red {
            self.obs.metrics.inc(self.obs_i.red_dwell_cycles, 1);
        }
        if red_entered {
            self.obs.metrics.inc(self.obs_i.red_entries, 1);
        }
        self.obs
            .metrics
            .set(self.obs_i.journal_dropped, self.journal.dropped() as f64);
        self.obs.spans.attr("state", AttrValue::Str(state.name()));
        self.obs.spans.close(now);
        if red_entered {
            self.obs
                .flight
                .trigger(now, "red-entry", &self.obs.spans, &self.obs.metrics);
        }

        // Fleet health plane: the budget architecture has no racks or
        // provision figure, so the single zone tracks the metered power
        // against the controller's own high watermark.
        let tick = self.tick_index + 1;
        if self.health.wants_node_sample(tick) {
            self.health.observe_node_power(self.columns.power_w());
        }
        let facility_budget_w = self
            .budget_controller
            .as_ref()
            .map(|c| c.thresholds().p_high_w())
            .unwrap_or(0.0);
        let facility_state = zone_state_of(state);
        let work = StageWork {
            samples: self.scratch_views.len() as u64,
            commands: commands.len() as u64,
            racks: 1,
        };
        let state1 = [facility_state];
        let power1 = [metered_w];
        let budget1 = [facility_budget_w];
        let cov1 = [1.0];
        let obs = CycleObservation {
            rack_state: &state1,
            rack_power_w: &power1,
            rack_budget_w: &budget1,
            rack_coverage: &cov1,
            facility_state,
            facility_power_w: metered_w,
            facility_budget_w,
            facility_coverage: 1.0,
        };
        let base = self.health.observe_cycle(now, &obs, &work);
        self.publish_health_edges(now, base);
    }

    /// Runs the sampling agents and the manager's control cycle, applying
    /// the resulting commands.
    fn control_cycle(
        &mut self,
        now: SimTime,
        metered_w: f64,
        dt: f64,
        tick: u64,
        incremental: bool,
    ) {
        self.obs.spans.open("cycle", now);

        // Hierarchical delegation pass (multi-rack only): re-cut the
        // facility budget across rows and racks from each rack's *true*
        // power demand before the rack control cycles run. Serial — the
        // budget trajectory must be worker-width-invariant — and absent on
        // single-rack topologies, whose span stream must stay bit-equal to
        // the flat manager's.
        let hier_multi = self.hierarchy.as_ref().is_some_and(|h| !h.is_single_rack());
        let mut fleet_true_w = 0.0;
        if hier_multi {
            fleet_true_w = self.columns.fleet_power_w();
            let shard_w = self.columns.shard_power_w();
            self.scratch_rack_true.clear();
            self.scratch_rack_true.extend_from_slice(shard_w);
            // ppc-lint: allow(panic-path): hier_multi implies a hierarchy is attached
            let h = self.hierarchy.as_mut().expect("checked just above");
            self.obs.spans.open("delegate", now);
            let outcome = h.delegate(&self.scratch_rack_true);
            self.obs
                .spans
                .attr("racks", AttrValue::U64(h.topology().racks() as u64));
            self.obs
                .spans
                .attr("redelegated", AttrValue::U64(u64::from(outcome.changed)));
            self.obs
                .spans
                .attr("drained", AttrValue::U64(outcome.drained.len() as u64));
            self.obs.spans.close(now);
            for &r in &outcome.drained {
                self.journal.record_with(now, Severity::Warn, "hier", || {
                    format!("rack {r} budget drained to its row (no online nodes)")
                });
            }
            if let Some(hi) = self.hier_i.as_ref() {
                self.obs
                    .metrics
                    .inc(hi.redelegations, u64::from(outcome.changed));
                self.obs
                    .metrics
                    .inc(hi.budget_drains, outcome.drained.len() as u64);
                for (&g, &b) in hi.rack_budget.iter().zip(h.rack_budget_w()) {
                    self.obs.metrics.set(g, b);
                }
            }
        }

        // Whichever control plane is attached drives the rest of the
        // cycle; both expose the same global candidate view.
        enum Ctrl<'a> {
            Flat(&'a mut PowerManager),
            Hier(&'a mut HierarchicalManager),
        }
        impl Ctrl<'_> {
            fn sets(&self) -> &ppc_core::NodeSets {
                match self {
                    Ctrl::Flat(m) => m.sets(),
                    Ctrl::Hier(h) => h.sets(),
                }
            }
        }
        let mut ctrl = match (self.manager.as_mut(), self.hierarchy.as_mut()) {
            (Some(m), _) => Ctrl::Flat(m),
            (None, Some(h)) => Ctrl::Hier(h),
            // ppc-lint: allow(panic-path): step() dispatches here only when a controller is attached
            (None, None) => unreachable!("checked by caller"),
        };

        // The lazy regime (incremental, fault-free, no meter dropout): when
        // nothing changed since the last cycle, every candidate's sample
        // would be bit-identical to its previous one and the resulting job
        // observations identical too — so the cycle reuses the cached
        // observations and skips sampling entirely. The manager itself
        // still runs every cycle: the metered reading moves even when the
        // nodes do not.
        let lazy =
            incremental && self.faults.is_none() && self.spec.meter_noise.dropout_prob == 0.0;
        let rebuild = !lazy
            || self.obs_stale
            || self.dirty_prev
            || !self.columns.dirty.is_empty()
            || !self.settle_pending.is_empty()
            || !self.resample_now.is_empty();

        // Agents run on candidate nodes only; monitoring everything would
        // be the unscalable design Figure 5 warns about. The sample buffer
        // is scratch, reused across cycles. Dead and silenced nodes
        // deliver nothing — their collector entries go stale.
        let sample_t = self.obs.profile.start();
        self.obs.spans.open("sample", now);
        self.scratch_samples.clear();
        self.scratch_settle.clear();
        if rebuild && lazy {
            // Work-list sampling: only nodes whose sample value can differ
            // from the collector's current view are touched. A clean,
            // settled candidate's dense sample would be bit-identical to
            // its collector entry, so skipping it changes nothing the
            // policies (or the fingerprints) can see.
            let resample = std::mem::take(&mut self.resample_now);
            let sets = ctrl.sets();
            // Nodes sampled last cycle settle their prev-power view; a
            // node being re-sampled now settles via the ingest itself, and
            // one that just left the candidate set (SLA protection) keeps
            // its frozen prev, exactly like dense.
            for &raw in &self.settle_pending {
                let id = NodeId(raw);
                if self.columns.dirty.contains(id)
                    || resample.contains(&raw)
                    || !sets.is_candidate(id)
                {
                    continue;
                }
                self.scratch_settle.push(raw);
            }
            // Real samples: dirty candidates plus the forced re-samples.
            self.scratch_sampled.clear();
            for &raw in self.columns.dirty.indices() {
                if sets.is_candidate(NodeId(raw)) {
                    self.scratch_sampled.push(raw);
                }
            }
            for &raw in &resample {
                let id = NodeId(raw);
                if !self.columns.dirty.contains(id) && sets.is_candidate(id) {
                    self.scratch_sampled.push(raw);
                }
            }
            for k in 0..self.scratch_sampled.len() {
                let raw = self.scratch_sampled[k];
                let id = NodeId(raw);
                let idx = raw as usize;
                // Bring the counters current: a forced re-sample may not
                // have materialized this tick (its state is unchanged), and
                // a rejoiner's gap accumulates for real.
                let behind = tick - self.columns.stamp_of(id);
                if behind > 0 {
                    self.nodes[idx].catch_up(dt, behind);
                    self.columns.set_stamp(id, tick);
                }
                // A sample whose delta does not span exactly the last tick
                // (first-ever sample, post-protection gap) produces a value
                // the next cycle's dense sample would not repeat: force a
                // real follow-up next cycle instead of a settle.
                let fresh_baseline =
                    self.agents[idx].is_primed() && self.last_sampled_tick[idx] + 1 == tick;
                if !fresh_baseline {
                    self.resample_next.push(raw);
                }
                if let Some(sample) = self.agents[idx].sample(&self.nodes[idx], now) {
                    self.scratch_samples.push(sample);
                }
                self.last_sampled_tick[idx] = tick;
            }
            // Recycle buffers: this cycle's sampled set settles next
            // cycle; the spent force-list becomes the next staging buffer.
            std::mem::swap(&mut self.settle_pending, &mut self.scratch_sampled);
            let mut spent = resample;
            spent.clear();
            self.resample_now = std::mem::replace(&mut self.resample_next, spent);
        } else if rebuild {
            for &id in ctrl.sets().candidates() {
                if let Some(fs) = self.faults.as_ref() {
                    if fs.engine.is_down(id) || fs.engine.is_silent(id) {
                        continue;
                    }
                }
                let idx = id.0 as usize;
                let sample = if incremental {
                    // Real sample every cycle (fault runs rebuild the
                    // staleness view each time). Bring the counters
                    // current first: a clean node may not have
                    // materialized this tick, and a post-silence gap must
                    // accumulate for real (the dense path's delta spans
                    // the whole gap).
                    let behind = tick - self.columns.stamp_of(id);
                    if behind > 0 && !self.columns.is_down(id) {
                        self.nodes[idx].catch_up(dt, behind);
                        self.columns.set_stamp(id, tick);
                    }
                    self.agents[idx].sample(&self.nodes[idx], now)
                } else {
                    self.agents[idx].sample(&self.nodes[idx], now)
                };
                self.last_sampled_tick[idx] = tick;
                if let Some(sample) = sample {
                    self.scratch_samples.push(sample);
                }
            }
        }
        // The span tree must be identical across evaluation modes, so the
        // lazy regime reports the *logical* sample count — what the dense
        // path would have taken (one per candidate; the lazy regime
        // excludes faults and agent noise, so none are dropped).
        let logical_samples = if lazy {
            ctrl.sets().candidates().len() as u64
        } else {
            self.scratch_samples.len() as u64
        };
        self.obs
            .spans
            .attr("samples", AttrValue::U64(logical_samples));
        self.obs.spans.close(now);
        self.obs.profile.stop("sample", sample_t);

        // Everything the management node computes per cycle is measured:
        // ingestion, observation building, classification, selection. Job
        // membership is borrowed straight from the run-queue — no clones.
        // Under fault injection the staleness filter runs first: only
        // candidates with fresh samples are selectable, and the fresh
        // fraction feeds the manager's coverage-floor fallback.
        let control_t = self.obs.profile.start();
        let models = &self.models;
        let collector = &mut self.collector;
        let nodes = &self.nodes;
        let scheduler = &self.scheduler;
        let samples = &self.scratch_samples;
        let settle = &self.scratch_settle;
        let cached_obs = &mut self.cached_obs;
        let obs_cache = &mut self.obs_cache;
        let obs_slot = &mut self.obs_slot;
        let node_runq = &mut self.node_runq;
        let obs_runq = &mut self.obs_runq;
        let scratch_slots = &mut self.scratch_slots;
        let faults = self.faults.as_mut();
        let spans = &mut self.obs.spans;
        let rack_obs = &mut self.rack_obs;
        let rack_true = &self.scratch_rack_true;
        let rack_cov = &mut self.scratch_rack_cov;
        // Fleet node-power sketch sampling (every NODE_SKETCH_PERIOD
        // ticks; the cadence keys off the deterministic tick index). In
        // the multi-rack fan-out each rack slot sketches its own
        // contiguous power-column slice in parallel and the shards merge
        // serially post-join — sketch merge is exactly associative, so
        // the result is bit-identical to serial observation at any pool
        // width. The flat path observes the dense column serially below.
        let want_node_sample = self.health.wants_node_sample(tick);
        let node_power: Option<&[f64]> =
            (want_node_sample && hier_multi).then(|| self.columns.power_w());
        let mut shard_sketch = QuantileSketch::new();
        let pool: &WorkerPool = match self.pool.as_deref() {
            Some(p) => p,
            None => WorkerPool::global(),
        };
        // Full observation rebuild only when the job list itself changed
        // shape (start/finish/protection edges) or outside the lazy
        // regime; otherwise only the jobs whose members were sampled or
        // settled this cycle are refreshed in place.
        let full_rebuild = rebuild && (!lazy || self.obs_stale);
        let outcome = self.cost_meter.measure(|| {
            spans.open("ingest", now);
            spans.attr("samples", AttrValue::U64(logical_samples));
            for &raw in settle {
                collector.refresh(NodeId(raw), now);
            }
            collector.ingest_batch(samples);
            spans.close(now);
            let model_of = |n: NodeId| Arc::clone(&models[n.0 as usize]);
            let jobs = || scheduler.running_jobs().iter().map(|j| (j.id(), j.nodes()));
            match faults {
                Some(fs) => {
                    fs.fresh.clear();
                    let candidates = ctrl.sets().candidates();
                    for &id in candidates {
                        if collector.is_fresh(id, now, fs.staleness_limit) {
                            fs.fresh.insert(id);
                        }
                    }
                    let coverage = if candidates.is_empty() {
                        1.0
                    } else {
                        fs.fresh.len() as f64 / candidates.len() as f64
                    };
                    spans.open("observe", now);
                    *cached_obs =
                        observe_jobs_cached(collector, jobs(), &fs.fresh, &model_of, obs_cache);
                    spans.attr("jobs", AttrValue::U64(cached_obs.len() as u64));
                    spans.attr("coverage", AttrValue::F64(coverage));
                    spans.close(now);
                    match &mut ctrl {
                        Ctrl::Flat(m) => m.control_cycle_traced(
                            metered_w,
                            cached_obs.as_slice(),
                            &NodesView(nodes),
                            coverage,
                            now,
                            spans,
                        ),
                        Ctrl::Hier(h) if h.is_single_rack() => h.subs_mut()[0]
                            .control_cycle_traced(
                                metered_w,
                                cached_obs.as_slice(),
                                &NodesView(nodes),
                                coverage,
                                now,
                                spans,
                            ),
                        Ctrl::Hier(h) => hier_multi_control(
                            h,
                            metered_w,
                            cached_obs.as_slice(),
                            nodes,
                            Some(&fs.fresh),
                            rack_true,
                            fleet_true_w,
                            true,
                            rack_obs,
                            node_power,
                            &mut shard_sketch,
                            rack_cov,
                            pool,
                            now,
                            spans,
                        ),
                    }
                }
                None => {
                    spans.open("observe", now);
                    let mut full = full_rebuild;
                    if !full && lazy {
                        // Per-job refresh: collect the observation slots
                        // holding a sampled or settled member. A touched
                        // node whose job was dropped from the list (all
                        // members idle or excluded) may bring it back —
                        // only a full rebuild can re-insert it in order.
                        scratch_slots.clear();
                        for raw in samples
                            .iter()
                            .map(|s| s.node.0)
                            .chain(settle.iter().copied())
                        {
                            let slot = obs_slot[raw as usize];
                            if slot != u32::MAX {
                                scratch_slots.push(slot);
                            } else if node_runq[raw as usize] != u32::MAX {
                                full = true;
                            }
                        }
                        if !full && !scratch_slots.is_empty() {
                            scratch_slots.sort_unstable();
                            scratch_slots.dedup();
                            let sets = ctrl.sets();
                            let running = scheduler.running_jobs();
                            for &slot in scratch_slots.iter() {
                                let job = &running[obs_runq[slot as usize] as usize];
                                if !observe_job_into(
                                    collector,
                                    job.id(),
                                    job.nodes(),
                                    sets,
                                    &model_of,
                                    obs_cache,
                                    &mut cached_obs[slot as usize],
                                ) {
                                    // The refreshed job dropped out of the
                                    // list: positions shift, rebuild fully.
                                    full = true;
                                    break;
                                }
                            }
                        }
                    }
                    if full {
                        let sets = ctrl.sets();
                        let running = scheduler.running_jobs();
                        obs_slot.fill(u32::MAX);
                        node_runq.fill(u32::MAX);
                        obs_runq.clear();
                        let mut w = 0usize;
                        for (qi, job) in running.iter().enumerate() {
                            for &n in job.nodes() {
                                node_runq[n.0 as usize] = qi as u32;
                            }
                            if w == cached_obs.len() {
                                cached_obs.push(JobObservation {
                                    id: job.id(),
                                    nodes: Vec::new(),
                                    prev_power_w: None,
                                });
                            }
                            if observe_job_into(
                                collector,
                                job.id(),
                                job.nodes(),
                                sets,
                                &model_of,
                                obs_cache,
                                &mut cached_obs[w],
                            ) {
                                for &n in job.nodes() {
                                    obs_slot[n.0 as usize] = w as u32;
                                }
                                obs_runq.push(qi as u32);
                                w += 1;
                            }
                        }
                        cached_obs.truncate(w);
                    }
                    spans.attr("jobs", AttrValue::U64(cached_obs.len() as u64));
                    spans.close(now);
                    match &mut ctrl {
                        Ctrl::Flat(m) => m.control_cycle_traced(
                            metered_w,
                            cached_obs.as_slice(),
                            &NodesView(nodes),
                            1.0,
                            now,
                            spans,
                        ),
                        Ctrl::Hier(h) if h.is_single_rack() => h.subs_mut()[0]
                            .control_cycle_traced(
                                metered_w,
                                cached_obs.as_slice(),
                                &NodesView(nodes),
                                1.0,
                                now,
                                spans,
                            ),
                        Ctrl::Hier(h) => hier_multi_control(
                            h,
                            metered_w,
                            cached_obs.as_slice(),
                            nodes,
                            None,
                            rack_true,
                            fleet_true_w,
                            rebuild,
                            rack_obs,
                            node_power,
                            &mut shard_sketch,
                            rack_cov,
                            pool,
                            now,
                            spans,
                        ),
                    }
                }
            }
        });
        self.obs.profile.stop("control", control_t);
        if rebuild {
            self.obs_stale = false;
        }
        self.state_log.push((now, outcome.state));
        let red_entered =
            outcome.state == PowerState::Red && self.last_state != Some(PowerState::Red);
        if self.last_state != Some(outcome.state) {
            let severity = match outcome.state {
                PowerState::Red => Severity::Warn,
                _ => Severity::Info,
            };
            self.journal.record_with(now, severity, "state", || {
                format!(
                    "power state -> {} at {:.2} kW",
                    outcome.state,
                    metered_w / 1e3
                )
            });
            self.last_state = Some(outcome.state);
        }
        if outcome.thresholds_adjusted {
            self.journal
                .record_with(now, Severity::Info, "threshold", || {
                    format!(
                        "adjusted: P_L={:.2} kW, P_H={:.2} kW",
                        outcome.thresholds.p_low_w() / 1e3,
                        outcome.thresholds.p_high_w() / 1e3
                    )
                });
        }

        // Training period: observe only, never throttle.
        let in_training = self
            .manager
            .as_ref()
            .map(|m| m.learner().in_training())
            .or_else(|| self.hierarchy.as_ref().map(|h| h.in_training()))
            // ppc-lint: allow(panic-path): control_cycle() runs only with a controller attached (see step())
            .expect("checked by caller");
        if !in_training {
            let actuate_t = self.obs.profile.start();
            self.obs.spans.open("actuate", now);
            self.obs
                .spans
                .attr("commands", AttrValue::U64(outcome.commands.len() as u64));
            self.process_retries(now);
            for cmd in &outcome.commands {
                self.apply_command(cmd.node, cmd.level, now);
            }
            if let Some(fs) = self.faults.as_ref() {
                self.obs
                    .spans
                    .attr("retries_pending", AttrValue::U64(fs.retries.len() as u64));
            }
            self.obs.spans.close(now);
            self.obs.profile.stop("actuate", actuate_t);
        }

        // Per-cycle instruments, then the root span, then (possibly) the
        // flight recorder — in that order so a red-entry snapshot captures
        // this very cycle's spans and up-to-date registry.
        self.obs.metrics.inc(self.obs_i.cycles, 1);
        self.obs.metrics.set(self.obs_i.metered_power_w, metered_w);
        self.obs
            .metrics
            .observe(self.obs_i.selection_size, outcome.commands.len() as f64);
        if outcome.state == PowerState::Red {
            self.obs.metrics.inc(self.obs_i.red_dwell_cycles, 1);
        }
        if red_entered {
            self.obs.metrics.inc(self.obs_i.red_entries, 1);
        }
        self.obs
            .metrics
            .set(self.obs_i.journal_dropped, self.journal.dropped() as f64);
        if let (Some(h), Some(hi)) = (self.hierarchy.as_ref(), self.hier_i.as_ref()) {
            let mut yellow = 0u64;
            let mut red = 0u64;
            for s in h.last_rack_states() {
                match s {
                    PowerState::Yellow => yellow += 1,
                    PowerState::Red => red += 1,
                    PowerState::Green => {}
                }
            }
            self.obs.metrics.set(hi.racks_yellow, yellow as f64);
            self.obs.metrics.set(hi.racks_red, red as f64);
        }
        self.obs
            .spans
            .attr("state", AttrValue::Str(outcome.state.name()));
        self.obs.spans.close(now);
        if red_entered {
            self.obs
                .flight
                .trigger(now, "red-entry", &self.obs.spans, &self.obs.metrics);
        }

        // Fleet health plane: fold the cycle into the rollup tree, stage
        // sketches and SLO rules, after the root span closed so an
        // alert-triggered flight snapshot captures the complete cycle.
        if want_node_sample {
            if hier_multi {
                self.health.merge_node_shard(&shard_sketch);
            } else {
                self.health.observe_node_power(self.columns.power_w());
            }
        }
        // The facility-level coverage mirrors what the controller itself
        // consumed: fresh candidates over all candidates under faults,
        // 1.0 otherwise (`fs.fresh` was rebuilt this cycle above).
        let facility_coverage = match self.faults.as_ref() {
            Some(fs) => {
                let candidates = self
                    .manager
                    .as_ref()
                    .map(|m| m.sets())
                    .or_else(|| self.hierarchy.as_ref().map(|h| h.sets()))
                    // ppc-lint: allow(panic-path): control_cycle() runs only with a controller attached (see step())
                    .expect("checked by caller")
                    .candidates();
                if candidates.is_empty() {
                    1.0
                } else {
                    fs.fresh.len() as f64 / candidates.len() as f64
                }
            }
            None => 1.0,
        };
        let facility_budget_w = self.provision_in_force_w().unwrap_or(0.0);
        let facility_state = zone_state_of(outcome.state);
        let work = StageWork {
            samples: logical_samples,
            commands: outcome.commands.len() as u64,
            racks: if hier_multi {
                self.scratch_rack_true.len() as u64
            } else {
                1
            },
        };
        let base = if hier_multi {
            self.scratch_rack_zone.clear();
            // ppc-lint: allow(panic-path): hier_multi implies a hierarchy is attached
            let h = self.hierarchy.as_ref().expect("checked above");
            for &s in h.last_rack_states() {
                self.scratch_rack_zone.push(zone_state_of(s));
            }
            let obs = CycleObservation {
                rack_state: &self.scratch_rack_zone,
                rack_power_w: &self.scratch_rack_true,
                rack_budget_w: h.rack_budget_w(),
                rack_coverage: &self.scratch_rack_cov,
                facility_state,
                facility_power_w: metered_w,
                facility_budget_w,
                facility_coverage,
            };
            self.health.observe_cycle(now, &obs, &work)
        } else {
            // The flat manager and the single-rack hierarchy feed one
            // zone from the facility values only, so both architectures
            // produce bit-identical health fingerprints.
            let state1 = [facility_state];
            let power1 = [metered_w];
            let budget1 = [facility_budget_w];
            let cov1 = [facility_coverage];
            let obs = CycleObservation {
                rack_state: &state1,
                rack_power_w: &power1,
                rack_budget_w: &budget1,
                rack_coverage: &cov1,
                facility_state,
                facility_power_w: metered_w,
                facility_budget_w,
                facility_coverage,
            };
            self.health.observe_cycle(now, &obs, &work)
        };
        self.publish_health_edges(now, base);
    }

    /// Journals every new SLO alert edge, bumps the alert instruments,
    /// and snapshots the flight recorder on each alert *opening* — the
    /// black box captures the cycle that breached the objective, not
    /// just Red entries.
    fn publish_health_edges(&mut self, now: SimTime, base: usize) {
        for i in base..self.health.alerts().len() {
            let ev = self.health.alerts()[i];
            let opened = ev.edge == ppc_obs::AlertEdge::Open;
            let severity = if opened {
                Severity::Warn
            } else {
                Severity::Info
            };
            self.journal.record_with(now, severity, "alert", || {
                format!(
                    "slo {} {} on {}: value {:.3} vs threshold {:.3}",
                    ev.rule,
                    if opened { "open" } else { "resolve" },
                    ev.zone.label(),
                    ev.value,
                    ev.threshold
                )
            });
            self.obs.metrics.inc(self.obs_i.health_alert_edges, 1);
            if opened {
                self.obs.flight.trigger(
                    now,
                    format!("slo:{}", ev.rule),
                    &self.obs.spans,
                    &self.obs.metrics,
                );
            }
        }
        self.obs.metrics.set(
            self.obs_i.health_alerts_open,
            self.health.slo().open_alerts() as f64,
        );
    }

    /// Sends one throttling command to a node, routing around faults.
    ///
    /// A healthy node applies it directly. A dead node's command is
    /// dropped outright (the node rejoins at the lowest level anyway); a
    /// frozen actuator queues the command for retry with backoff. Either
    /// failure counts once in `commands_failed`, and because the control
    /// loop reads actual node levels (`LevelView`), the next cycle sees
    /// the un-actuated truth and re-plans — the reconcile path.
    fn apply_command(&mut self, node: NodeId, level: Level, now: SimTime) {
        let Some(fs) = self.faults.as_mut() else {
            // Privileged nodes are never candidates, so set_level cannot
            // hit the Privileged error; InvalidLevel cannot happen because
            // commands derive from the node's own ladder.
            self.actuate_level(node, level);
            self.commands_applied += 1;
            self.obs.metrics.inc(self.obs_i.commands_applied, 1);
            return;
        };
        // A newer command supersedes any queued retry for the node.
        fs.retries.retain(|r| r.node != node);
        if fs.engine.is_down(node) {
            fs.commands_failed += 1;
            self.obs.metrics.inc(self.obs_i.commands_failed, 1);
            self.journal.record_with(now, Severity::Warn, "fault", || {
                format!("command to dead node {} dropped", node.0)
            });
            return;
        }
        if fs.engine.is_hung(node) {
            fs.commands_failed += 1;
            self.obs.metrics.inc(self.obs_i.commands_failed, 1);
            fs.retries.push(PendingRetry {
                node,
                level,
                attempts: 1,
                cooldown: 1,
            });
            self.journal.record_with(now, Severity::Warn, "fault", || {
                format!(
                    "command to node {} timed out (actuator frozen), will retry",
                    node.0
                )
            });
            return;
        }
        self.actuate_level(node, level);
        self.commands_applied += 1;
        self.obs.metrics.inc(self.obs_i.commands_applied, 1);
    }

    /// Walks the retry queue: applies commands whose actuator thawed,
    /// backs off ones still frozen (1, 2, 4 cycles), and drops commands
    /// whose node died or whose attempts ran out.
    fn process_retries(&mut self, now: SimTime) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        let mut i = 0;
        while i < fs.retries.len() {
            if fs.retries[i].cooldown > 0 {
                fs.retries[i].cooldown -= 1;
                i += 1;
                continue;
            }
            let r = fs.retries[i];
            if fs.engine.is_down(r.node) {
                fs.retries.remove(i);
                continue;
            }
            if fs.engine.is_hung(r.node) {
                if r.attempts >= MAX_COMMAND_ATTEMPTS {
                    fs.retries.remove(i);
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!(
                            "giving up on node {} after {} attempts (actuator still frozen)",
                            r.node.0, r.attempts
                        )
                    });
                } else {
                    fs.retries[i].attempts += 1;
                    // 1 << attempts: cooldowns of 2 then 4 cycles.
                    fs.retries[i].cooldown = 1 << r.attempts;
                    self.obs.metrics.inc(self.obs_i.actuation_retries, 1);
                    i += 1;
                }
                continue;
            }
            self.actuate_level(r.node, r.level);
            self.commands_applied += 1;
            self.obs.metrics.inc(self.obs_i.actuation_retries, 1);
            self.obs.metrics.inc(self.obs_i.commands_applied, 1);
            self.journal.record_with(now, Severity::Info, "fault", || {
                format!(
                    "retried command applied: node {} -> {:?}",
                    r.node.0, r.level
                )
            });
            fs.retries.remove(i);
        }
        self.faults = Some(fs);
    }

    /// Peak die temperature observed, °C (`None` without a thermal model).
    pub fn peak_temperature_c(&self) -> Option<f64> {
        self.thermal_enabled().then_some(self.peak_temp_c)
    }

    /// True if any node carries a thermal model.
    fn thermal_enabled(&self) -> bool {
        self.spec.node_spec.thermal.is_some()
            || self
                .spec
                .extra_groups
                .iter()
                .any(|g| g.spec.thermal.is_some())
    }

    /// Integral of the cluster-mean relative failure rate over time, in
    /// rate-seconds (`None` without a thermal model). A machine held at
    /// ambient for T seconds scores exactly T; running hot scores more —
    /// the reliability analogue of ΔP×T.
    pub fn failure_rate_integral(&self) -> Option<f64> {
        self.thermal_enabled().then_some(self.failure_integral)
    }

    /// Runs the simulation for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let ticks = self.clock.ticks_in(duration);
        for _ in 0..ticks {
            self.step();
        }
    }
}

/// One per-rack slot of the hierarchical fan-out: the rack's sub-manager,
/// its inputs, and its outcome slot. Workers touch disjoint slots only.
struct RackSlot<'a> {
    mgr: &'a mut PowerManager,
    obs: &'a [JobObservation],
    metered_w: f64,
    coverage: f64,
    /// The rack's contiguous node-power column slice (empty outside
    /// node-sketch sampling ticks).
    power: &'a [f64],
    /// Per-shard node-power sketch, merged serially post-join.
    sketch: QuantileSketch,
    out: Option<CycleOutcome>,
}

/// Projects the controller's Green/Yellow/Red classification into the
/// health rollup's zone states.
fn zone_state_of(s: PowerState) -> ZoneState {
    match s {
        PowerState::Green => ZoneState::Green,
        PowerState::Yellow => ZoneState::Yellow,
        PowerState::Red => ZoneState::Red,
    }
}

/// Runs the multi-rack hierarchical control cycle: split the global job
/// observations by owning rack, apportion the metered reading by each
/// rack's share of true fleet power, restrict coverage to each rack's own
/// candidates, fan the rack sub-managers out over the worker pool, and
/// roll the outcomes back up serially in rack order.
///
/// Width-invariance argument: each rack's cycle reads only its own slot
/// (its sub-manager, its observation slice, scalars) and records no spans
/// (sub-managers run with a disabled recorder); every piece of shared
/// bookkeeping — the rollup, the `shards` span taxonomy, the instruments —
/// happens after the join, in rack order. This is the same serial
/// post-join discipline the what-if engine's batch fan-out uses.
#[allow(clippy::too_many_arguments)]
fn hier_multi_control(
    hier: &mut HierarchicalManager,
    metered_w: f64,
    cached_obs: &[JobObservation],
    nodes: &[Node],
    fresh: Option<&BTreeSet<NodeId>>,
    rack_true_w: &[f64],
    fleet_true_w: f64,
    resplit: bool,
    rack_obs: &mut Vec<Vec<JobObservation>>,
    node_power: Option<&[f64]>,
    node_sketch: &mut QuantileSketch,
    coverage_out: &mut Vec<f64>,
    pool: &WorkerPool,
    now: SimTime,
    spans: &mut SpanRecorder,
) -> CycleOutcome {
    let topology = *hier.topology();
    let racks = topology.racks();
    rack_obs.resize_with(racks, Vec::new);
    if resplit {
        // Re-partition each job observation by owning rack: a job spanning
        // racks appears once per rack it touches, carrying only that
        // rack's member observations. Its job-global previous power passes
        // through unchanged — the per-node savings estimates are what the
        // node-scoped policies actually consume.
        for ro in rack_obs.iter_mut() {
            ro.clear();
        }
        for obs in cached_obs {
            for nob in &obs.nodes {
                let bucket = &mut rack_obs[topology.rack_of(nob.node)];
                if bucket.last().map(|o| o.id) != Some(obs.id) {
                    bucket.push(JobObservation {
                        id: obs.id,
                        nodes: Vec::new(),
                        prev_power_w: obs.prev_power_w,
                    });
                }
                // ppc-lint: allow(panic-path): an entry was pushed just above
                let slot = bucket.last_mut().expect("bucket entry just pushed");
                slot.nodes.push(*nob);
            }
        }
    }
    // Per-rack inputs. The metered apportionment keys off *true* power so
    // the split is exact under meter noise; coverage restricts the fresh
    // set to the rack's node-id range against the rack's own candidates.
    let mut metered_rack = vec![0.0f64; racks];
    let mut coverage_rack = vec![1.0f64; racks];
    for r in 0..racks {
        if fleet_true_w > 0.0 {
            metered_rack[r] = metered_w * rack_true_w[r] / fleet_true_w;
        }
        if let Some(fresh) = fresh {
            let range = topology.rack_nodes(r);
            let candidates = hier.subs()[r].sets().candidate_count();
            if candidates > 0 {
                let fresh_here = fresh.range(NodeId(range.start)..NodeId(range.end)).count();
                coverage_rack[r] = fresh_here as f64 / candidates as f64;
            }
        }
    }
    coverage_out.clear();
    coverage_out.extend_from_slice(&coverage_rack);
    let mut slots: Vec<RackSlot> = hier
        .subs_mut()
        .iter_mut()
        .zip(rack_obs.iter())
        .zip(metered_rack.iter().zip(&coverage_rack))
        .enumerate()
        .map(|(r, ((mgr, obs), (&metered_w, &coverage)))| RackSlot {
            mgr,
            obs,
            metered_w,
            coverage,
            power: node_power
                .map(|p| {
                    let range = topology.rack_nodes(r);
                    &p[range.start as usize..range.end as usize]
                })
                .unwrap_or(&[]),
            sketch: QuantileSketch::new(),
            out: None,
        })
        .collect();
    pool.for_each_mut(&mut slots, |_, slot| {
        slot.out = Some(slot.mgr.control_cycle_with_coverage(
            slot.metered_w,
            slot.obs,
            &NodesView(nodes),
            slot.coverage,
        ));
        // Sketch building inside the fan-out is legal: `observe` touches
        // only the slot's own sketch, and the fingerprint-bearing merge
        // happens serially after the join.
        if !slot.power.is_empty() {
            slot.sketch.observe_slice(slot.power);
        }
    });
    // Serial post-join bookkeeping, in rack order. Span budget: one nested
    // span per *interesting* rack only (non-Green or commanding) — a pure
    // function of sim state, so the taxonomy stays deterministic and the
    // recorder is not swamped at 100k-node scale.
    spans.open("shards", now);
    let mut outcomes = Vec::with_capacity(racks);
    let mut yellow = 0u64;
    let mut red = 0u64;
    let mut total_commands = 0u64;
    for (r, slot) in slots.iter_mut().enumerate() {
        // ppc-lint: allow(panic-path): for_each_mut runs the closure once per slot
        let out = slot.out.take().expect("every rack slot filled");
        match out.state {
            PowerState::Yellow => yellow += 1,
            PowerState::Red => red += 1,
            PowerState::Green => {}
        }
        total_commands += out.commands.len() as u64;
        if out.state != PowerState::Green || !out.commands.is_empty() {
            spans.open("shard", now);
            spans.attr("rack", AttrValue::U64(r as u64));
            spans.attr("state", AttrValue::Str(out.state.name()));
            spans.attr("commands", AttrValue::U64(out.commands.len() as u64));
            spans.close(now);
        }
        outcomes.push(out);
    }
    spans.attr("racks", AttrValue::U64(racks as u64));
    spans.attr("commands", AttrValue::U64(total_commands));
    spans.attr("yellow", AttrValue::U64(yellow));
    spans.attr("red", AttrValue::U64(red));
    spans.close(now);
    if node_power.is_some() {
        // Serial post-join merge in rack order (any order would do —
        // sketch merge is commutative — but rack order keeps the
        // discipline uniform with the rest of the rollup).
        for slot in &slots {
            node_sketch.merge(&slot.sketch);
        }
    }
    drop(slots);
    hier.rollup(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::{ManagerConfig, NodeSets, PolicyKind};

    fn managed_mini(nodes: u32, policy: PolicyKind, provision_fraction: f64) -> ClusterSim {
        let mut spec = ClusterSpec::mini(nodes);
        spec.provision_fraction = provision_fraction;
        let sets = NodeSets::new(spec.node_ids(), spec.privileged.iter().copied());
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), policy)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        ClusterSim::new(spec).with_manager(manager)
    }

    #[test]
    fn unmanaged_sim_runs_jobs_and_records_power() {
        let mut sim = ClusterSim::new(ClusterSpec::mini(4));
        sim.run_for(SimDuration::from_secs(300));
        assert_eq!(sim.true_power().len(), 300);
        assert!(sim.utilization() > 0.0, "jobs should be running");
        // All nodes stay at the top level without a manager.
        assert!(sim.node_levels().iter().all(|&l| l == Level::new(9)));
        let p = sim.true_power().max().unwrap();
        // 4 busy Tianhe nodes: somewhere between idle (4×145) and max (4×341).
        assert!(p > 580.0 && p < 1_370.0, "peak={p}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = ClusterSim::new(ClusterSpec::mini(4));
            sim.run_for(SimDuration::from_secs(200));
            (
                sim.true_power().values().to_vec(),
                sim.finished().len(),
                sim.utilization(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "power traces must be bit-identical");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn tight_provision_forces_throttling() {
        // Provision at 55% of theoretical peak: the busy mini cluster
        // overshoots P_H quickly, forcing red/yellow cycles.
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.55);
        sim.run_for(SimDuration::from_secs(300));
        assert!(sim.commands_applied() > 0, "capping must engage");
        let stats = sim.manager().unwrap().stats();
        assert!(stats.yellow_cycles + stats.red_cycles > 0);
        // Some node must have been degraded at some point; after red
        // cycles at least the state log shows non-green.
        assert!(sim.state_log().iter().any(|(_, s)| *s != PowerState::Green));
    }

    #[test]
    fn capping_caps_the_peak() {
        let run = |policy: Option<PolicyKind>| {
            let mut sim = match policy {
                Some(p) => managed_mini(4, p, 0.70),
                None => ClusterSim::new({
                    let mut s = ClusterSpec::mini(4);
                    s.provision_fraction = 0.70;
                    s
                }),
            };
            sim.run_for(SimDuration::from_secs(600));
            sim.true_power().max().unwrap()
        };
        let uncapped = run(None);
        let capped = run(Some(PolicyKind::Mpc));
        assert!(
            capped < uncapped,
            "capped peak {capped} must be below uncapped {uncapped}"
        );
    }

    #[test]
    fn training_period_never_throttles() {
        let mut spec = ClusterSpec::mini(4);
        spec.provision_fraction = 0.55; // would throttle immediately if active
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 200,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        sim.run_for(SimDuration::from_secs(150));
        assert_eq!(sim.commands_applied(), 0, "training must not throttle");
        assert!(sim.manager().unwrap().learner().in_training());
        // Peak observation is happening.
        assert!(sim.manager().unwrap().learner().observed_peak_w() > 0.0);
    }

    #[test]
    fn crash_evicts_requeues_and_rejoins_at_lowest_level() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(60),
            node: NodeId(1),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(30),
            },
        }]);
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.70);
        sim = sim.with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(70));
        // Mid-outage: the node is down, off the candidate set, powerless.
        assert!(sim.fault_engine().unwrap().is_down(NodeId(1)));
        assert!(!sim
            .manager()
            .unwrap()
            .sets()
            .candidates()
            .contains(&NodeId(1)));
        assert_eq!(
            sim.jobs_requeued() + sim.jobs_failed(),
            1,
            "mini cluster is saturated"
        );
        sim.run_for(SimDuration::from_secs(60));
        // Rebooted: back in the candidate set at the lowest DVFS level.
        assert!(!sim.fault_engine().unwrap().is_down(NodeId(1)));
        assert!(sim
            .manager()
            .unwrap()
            .sets()
            .candidates()
            .contains(&NodeId(1)));
        let report = sim.availability_report().unwrap();
        assert_eq!(report.crashes, 1);
        assert!((report.mttr_secs - 30.0).abs() < 1.0);
        assert!(report.availability < 1.0);
    }

    #[test]
    fn down_node_draws_no_power() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(50),
            node: NodeId(0),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(1_000),
            },
        }]);
        let healthy = {
            let mut sim = ClusterSim::new(ClusterSpec::mini(4));
            sim.run_for(SimDuration::from_secs(100));
            sim.true_power().values().to_vec()
        };
        let mut sim =
            ClusterSim::new(ClusterSpec::mini(4)).with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(100));
        let faulted = sim.true_power().values().to_vec();
        // Identical until the crash, strictly lower afterwards.
        assert_eq!(healthy[..49], faulted[..49]);
        assert!(faulted[60] < healthy[60] * 0.9);
    }

    #[test]
    fn hung_actuator_fails_commands_and_retries() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Freeze every node's actuator over a window in which the tightly
        // provisioned cluster is certain to issue commands.
        let events = (0..4)
            .map(|n| FaultEvent {
                at: SimTime::from_secs(20),
                node: NodeId(n),
                kind: FaultKind::Hang {
                    duration: SimDuration::from_secs(120),
                },
            })
            .collect();
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.55)
            .with_faults(FaultInjection::new(FaultSchedule::new(events)));
        sim.run_for(SimDuration::from_secs(300));
        assert!(
            sim.commands_failed() > 0,
            "frozen actuators must fail commands"
        );
        assert!(
            sim.commands_applied() > 0,
            "commands succeed after the thaw"
        );
    }

    #[test]
    fn silence_starves_telemetry_into_conservative_mode() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Darken the whole cluster's telemetry for a long window; coverage
        // hits 0 and every capping cycle in the window runs conservative.
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(30),
            node: NodeId(0),
            kind: FaultKind::SubtreePartition {
                width: 4,
                duration: SimDuration::from_secs(200),
            },
        }]);
        let mut sim =
            managed_mini(4, PolicyKind::Mpc, 0.55).with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(300));
        let stats = sim.manager().unwrap().stats();
        assert!(stats.conservative_cycles > 0, "coverage floor must trip");
        let report = sim.availability_report().unwrap();
        assert_eq!(report.silences, 4);
        assert!(report.conservative_fraction > 0.0);
    }

    /// FNV-1a over the raw bit patterns of a float series.
    fn fnv1a_bits(values: &[f64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in values {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// All determinism fingerprints (journal, trace, spans, metrics,
    /// health rollup/sketches/alerts) plus the coarse outcome counters.
    #[allow(clippy::type_complexity)]
    fn digest(sim: &ClusterSim) -> (u64, u64, u64, u64, u64, u64, u64, usize, u64) {
        let hf = sim.health_fingerprints();
        (
            sim.journal().fingerprint(),
            fnv1a_bits(sim.true_power().values()),
            sim.span_fingerprint(),
            sim.metrics_fingerprint(),
            hf.rollup,
            hf.sketch,
            hf.alerts,
            sim.finished().len(),
            sim.commands_applied(),
        )
    }

    #[test]
    fn incremental_matches_full_fingerprints_fault_free() {
        // The fault-free managed run is the regime where lazy cycle
        // skipping and quiescent resampling actually engage; every
        // fingerprint must still be bit-identical to the dense reference.
        let run = |mode: EvalMode| {
            let mut sim = managed_mini(8, PolicyKind::Mpc, 0.60).with_eval_mode(mode);
            sim.run_for(SimDuration::from_secs(400));
            digest(&sim)
        };
        assert_eq!(run(EvalMode::Full), run(EvalMode::Incremental));
    }

    #[test]
    fn incremental_matches_full_with_critical_jobs() {
        // SLA protection moves nodes out of and back into the candidate
        // set mid-run: the lazy path must freeze a protected node's agent
        // baseline at the protection edge and take a gap-spanning sample
        // on rejoin, exactly like the dense reference that sampled it
        // every cycle until protection and re-sampled it on release.
        let run = |mode: EvalMode| {
            let mut spec = ClusterSpec::mini(8);
            spec.provision_fraction = 0.60;
            spec.critical_job_fraction = 0.4;
            let sets = NodeSets::new(spec.node_ids(), spec.privileged.iter().copied());
            let config = ManagerConfig {
                training_cycles: 0,
                ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
            };
            let manager = PowerManager::new(config, sets).unwrap();
            let mut sim = ClusterSim::new(spec)
                .with_manager(manager)
                .with_eval_mode(mode);
            sim.run_for(SimDuration::from_secs(500));
            digest(&sim)
        };
        assert_eq!(run(EvalMode::Full), run(EvalMode::Incremental));
    }

    #[test]
    fn incremental_matches_full_fingerprints_under_faults() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Faults force the eager incremental regime: every cycle samples
        // for real, but evaluation still only touches dirty nodes.
        let run = |mode: EvalMode| {
            let schedule = FaultSchedule::new(vec![
                FaultEvent {
                    at: SimTime::from_secs(40),
                    node: NodeId(1),
                    kind: FaultKind::Crash {
                        reboot: SimDuration::from_secs(30),
                    },
                },
                FaultEvent {
                    at: SimTime::from_secs(60),
                    node: NodeId(2),
                    kind: FaultKind::Hang {
                        duration: SimDuration::from_secs(50),
                    },
                },
                FaultEvent {
                    at: SimTime::from_secs(90),
                    node: NodeId(3),
                    kind: FaultKind::AgentSilence {
                        duration: SimDuration::from_secs(40),
                    },
                },
            ]);
            let mut sim = managed_mini(8, PolicyKind::Mpc, 0.60)
                .with_eval_mode(mode)
                .with_faults(FaultInjection::new(schedule));
            sim.run_for(SimDuration::from_secs(400));
            digest(&sim)
        };
        assert_eq!(run(EvalMode::Full), run(EvalMode::Incremental));
    }

    #[test]
    fn incremental_matches_full_unmanaged() {
        let run = |mode: EvalMode| {
            let mut sim = ClusterSim::new(ClusterSpec::mini(8)).with_eval_mode(mode);
            sim.run_for(SimDuration::from_secs(400));
            (
                fnv1a_bits(sim.true_power().values()),
                sim.journal().fingerprint(),
                sim.finished().len(),
            )
        };
        assert_eq!(run(EvalMode::Full), run(EvalMode::Incremental));
    }

    #[test]
    fn dirty_set_covers_every_power_change() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Step a dense and an incremental sim in lockstep: whenever any
        // node's true power changes between consecutive ticks in the
        // dense run, that node must be in the incremental run's dirty set
        // for the tick — and the whole power column must stay bit-equal.
        let make = |mode: EvalMode| {
            let schedule = FaultSchedule::new(vec![
                FaultEvent {
                    at: SimTime::from_secs(30),
                    node: NodeId(1),
                    kind: FaultKind::Crash {
                        reboot: SimDuration::from_secs(20),
                    },
                },
                FaultEvent {
                    at: SimTime::from_secs(55),
                    node: NodeId(4),
                    kind: FaultKind::Hang {
                        duration: SimDuration::from_secs(40),
                    },
                },
            ]);
            managed_mini(8, PolicyKind::Mpc, 0.60)
                .with_eval_mode(mode)
                .with_faults(FaultInjection::new(schedule))
        };
        let mut full = make(EvalMode::Full);
        let mut inc = make(EvalMode::Incremental);
        let mut prev = full.columns().power_w().to_vec();
        for tick in 0..300u64 {
            full.step();
            inc.step();
            let cur = full.columns().power_w();
            assert_eq!(
                cur,
                inc.columns().power_w(),
                "power columns diverged at tick {tick}"
            );
            for (i, (&p, &q)) in prev.iter().zip(cur.iter()).enumerate() {
                if p.to_bits() != q.to_bits() {
                    assert!(
                        inc.columns().dirty.contains(NodeId(i as u32)),
                        "node {i} power changed at tick {tick} but was not dirty"
                    );
                }
            }
            prev = cur.to_vec();
        }
    }

    #[test]
    fn privileged_nodes_keep_top_level_under_red_pressure() {
        let mut spec = ClusterSpec::mini(4);
        spec.provision_fraction = 0.55;
        spec.privileged = vec![NodeId(0)];
        let sets = NodeSets::new(spec.node_ids(), [NodeId(0)]);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::MpcC)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        sim.run_for(SimDuration::from_secs(300));
        assert!(sim.commands_applied() > 0);
        let levels = sim.node_levels();
        assert_eq!(levels[0], Level::new(9), "privileged node untouched");
        assert!(
            levels[1..].iter().any(|&l| l < Level::new(9)),
            "other nodes were throttled"
        );
    }
}
