//! The cluster simulation loop.
//!
//! One tick (= the sampling interval τ = one control cycle):
//!
//! 1. refill the job queue if empty (paper protocol) and start queued
//!    jobs on free nodes (first-fit, lowest indices);
//! 2. derive each node's operating state from the job phase it hosts and
//!    advance all node states **in parallel** (device counters, `/proc`);
//! 3. advance every running job at the minimum rate over its member nodes
//!    (SPMD bottleneck semantics), collecting finished-job records;
//! 4. sum true node power, push it to the trace, and take a (noisy)
//!    facility-meter reading;
//! 5. run the profiling agents on candidate nodes, feed the collector,
//!    build job observations, and run the power manager's control cycle;
//! 6. apply the resulting throttling commands to the nodes — unless the
//!    manager is still in its training period, during which "all nodes are
//!    running at highest power state without any power management".

use crate::spec::ClusterSpec;
use ppc_core::capping::LevelView;
use ppc_core::observe::observe_jobs;
use ppc_core::{BudgetNodeView, PowerManager, PowerState, ProportionalBudgetController};
use ppc_faults::{FaultEngine, FaultInjection, FaultTransition};
use ppc_metrics::{AvailabilityInputs, AvailabilityReport};
use ppc_node::node::Node;
use ppc_node::{Level, NodeId, OperatingState, PowerModel};
use ppc_obs::{AttrValue, CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, ObsHub};
use ppc_simkit::journal::{Journal, Severity};
use ppc_simkit::par::WorkerPool;
use ppc_simkit::{RngFactory, SimDuration, SimTime, TickClock, TimeSeries};
use ppc_telemetry::cost::CycleCostMeter;
use ppc_telemetry::{Collector, MeterReading, NodeSample, ProfilingAgent, SystemPowerMeter};
use ppc_workload::{
    AdmissionPolicy, JobGenerator, JobPriority, JobQueue, JobRecord, Scheduler, TraceSource,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Give up on a frozen-actuator command after this many attempts (the
/// initial send plus backed-off retries at 1-, 2- and 4-cycle gaps).
const MAX_COMMAND_ATTEMPTS: u32 = 3;

/// A throttling command whose first send hit a frozen DVFS actuator,
/// waiting out its backoff before the next attempt.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    node: NodeId,
    level: Level,
    /// Sends performed so far (≥ 1: the failed original).
    attempts: u32,
    /// Control cycles to skip before the next attempt.
    cooldown: u32,
}

/// Runtime fault state: the schedule replay engine plus the robustness
/// bookkeeping the cluster layer accumulates around it.
struct FaultState {
    engine: FaultEngine,
    requeue_cap: u32,
    staleness_limit: SimDuration,
    /// Jobs evicted from dead nodes and successfully requeued.
    jobs_requeued: u64,
    /// Jobs dropped after exhausting the requeue cap.
    jobs_failed: u64,
    /// DVFS commands whose first send failed (dead node or frozen
    /// actuator). Retries and give-ups do not recount.
    commands_failed: u64,
    /// Failed commands waiting out their retry backoff.
    retries: Vec<PendingRetry>,
    /// Scratch: candidates with fresh telemetry this cycle.
    fresh: BTreeSet<NodeId>,
}

/// Handles to the deterministic instruments the cluster layer updates
/// (registered once in [`ClusterSim::new`], bumped on the hot path via
/// index access — no name lookups per tick).
struct ObsInstruments {
    /// Control cycles executed (manager or budget controller).
    cycles: CounterHandle,
    /// Throttling commands applied to nodes (includes retried sends).
    commands_applied: CounterHandle,
    /// Commands whose send failed (dead node or frozen actuator).
    commands_failed: CounterHandle,
    /// Retry sends attempted against previously frozen actuators.
    actuation_retries: CounterHandle,
    /// Green/Yellow → Red transitions.
    red_entries: CounterHandle,
    /// Control cycles spent in the Red state (dwell time in cycles).
    red_dwell_cycles: CounterHandle,
    /// Per-cycle selection size |A_target| (commands issued).
    selection_size: HistogramHandle,
    /// Last metered facility power, W.
    metered_power_w: GaugeHandle,
    /// Journal events evicted by the bounded ring so far.
    journal_dropped: GaugeHandle,
}

impl ObsInstruments {
    /// Bucket bounds for the selection-size histogram (commands/cycle).
    const SELECTION_BOUNDS: [f64; 8] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

    fn register(m: &mut MetricsRegistry) -> Self {
        ObsInstruments {
            cycles: m.counter("control_cycles_total"),
            commands_applied: m.counter("commands_applied_total"),
            commands_failed: m.counter("commands_failed_total"),
            actuation_retries: m.counter("actuation_retries_total"),
            red_entries: m.counter("red_entries_total"),
            red_dwell_cycles: m.counter("red_dwell_cycles_total"),
            selection_size: m.histogram("selection_size", &Self::SELECTION_BOUNDS),
            metered_power_w: m.gauge("metered_power_w"),
            journal_dropped: m.gauge("journal_events_dropped"),
        }
    }
}

/// Level lookup over the node array.
struct NodesView<'a>(&'a [Node]);

impl LevelView for NodesView<'_> {
    fn level_of(&self, node: NodeId) -> Level {
        self.0[node.0 as usize].level()
    }
    fn highest_of(&self, node: NodeId) -> Level {
        self.0[node.0 as usize].highest_level()
    }
}

/// The integrated cluster simulation.
pub struct ClusterSim {
    spec: ClusterSpec,
    clock: TickClock,
    /// Per-node power model (group-shared Arcs).
    models: Vec<Arc<PowerModel>>,
    nodes: Vec<Node>,
    scheduler: Scheduler,
    queue: JobQueue,
    generator: JobGenerator,
    /// Fixed-trace replay source (replaces the generator when present).
    trace_source: Option<TraceSource>,
    agents: Vec<ProfilingAgent>,
    meter: SystemPowerMeter,
    collector: Collector,
    manager: Option<PowerManager>,
    /// Alternative control architecture: the related-work proportional
    /// budget controller (mutually exclusive with `manager`).
    budget_controller: Option<ProportionalBudgetController>,
    true_power: TimeSeries,
    finished: Vec<JobRecord>,
    cost_meter: CycleCostMeter,
    commands_applied: u64,
    /// `(state, at)` log of control-cycle classifications.
    state_log: Vec<(SimTime, PowerState)>,
    /// Earliest instant the next job may be submitted (think time).
    next_submit_at: SimTime,
    arrival_rng: ppc_simkit::DetRng,
    /// Bounded audit trail of notable events.
    journal: Journal,
    /// Power state at the previous control cycle (for edge detection).
    last_state: Option<PowerState>,
    /// Peak die temperature seen so far, °C (thermal model only).
    peak_temp_c: f64,
    /// `∫ mean relative-failure-rate dt` (reference = ambient), in
    /// rate-seconds (thermal model only).
    failure_integral: f64,
    /// Worker-pool override (`None` = the process-global pool). Explicit
    /// pools let tests prove worker-count invariance of the traces.
    pool: Option<Arc<WorkerPool>>,
    /// Fault injection (`None` = a perfectly healthy machine).
    faults: Option<FaultState>,
    /// Observability: span tree, instruments, flight recorder, profiler.
    obs: ObsHub,
    /// Pre-registered instrument handles into `obs.metrics`.
    obs_i: ObsInstruments,
    /// Per-tick scratch buffers, reused across ticks so the steady-state
    /// step path performs no per-tick allocation.
    scratch_loads: Vec<OperatingState>,
    scratch_speeds: Vec<f64>,
    scratch_samples: Vec<NodeSample>,
    scratch_views: Vec<BudgetNodeView>,
    scratch_transitions: Vec<FaultTransition>,
    scratch_down: Vec<bool>,
}

impl ClusterSim {
    /// Builds an unmanaged cluster (baseline runs, training substrate).
    pub fn new(spec: ClusterSpec) -> Self {
        spec.validate();
        let factory = RngFactory::new(spec.seed);
        let tau = spec.tick.as_secs_f64();
        // One (spec, model) pair per partition, shared by its nodes.
        let mut groups: Vec<(Arc<ppc_node::NodeSpec>, Arc<PowerModel>, u32)> = Vec::new();
        let base = Arc::new(spec.node_spec.clone());
        groups.push((Arc::clone(&base), base.power_model(tau), spec.node_count));
        for g in &spec.extra_groups {
            let gs = Arc::new(g.spec.clone());
            let gm = gs.power_model(tau);
            groups.push((gs, gm, g.count));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(spec.total_nodes() as usize);
        let mut models: Vec<Arc<PowerModel>> = Vec::with_capacity(nodes.capacity());
        let mut next_id = 0u32;
        for (gspec, gmodel, count) in &groups {
            for _ in 0..*count {
                nodes.push(Node::new(
                    NodeId(next_id),
                    Arc::clone(gspec),
                    Arc::clone(gmodel),
                ));
                models.push(Arc::clone(gmodel));
                next_id += 1;
            }
        }
        for &p in &spec.privileged {
            nodes[p.0 as usize].set_privileged(true);
        }
        let admission = if spec.backfill {
            AdmissionPolicy::Backfill
        } else {
            AdmissionPolicy::FifoFirstFit
        };
        let scheduler = Scheduler::new(spec.node_ids(), base.cores()).with_admission(admission);
        let admissible_nprocs = spec.max_nprocs().min(256);
        let generator = JobGenerator::new(factory, spec.class, admissible_nprocs)
            .with_critical_fraction(spec.critical_job_fraction);
        let trace_source = spec
            .job_trace
            .as_ref()
            .map(|entries| TraceSource::new(entries.clone(), factory));
        let agents = spec
            .node_ids()
            .map(|id| ProfilingAgent::new(spec.agent_noise, factory.stream("agent", id.0 as u64)))
            .collect();
        let meter = SystemPowerMeter::new(spec.meter_noise, factory.stream("meter", 0));
        let mut obs = ObsHub::new();
        let obs_i = ObsInstruments::register(&mut obs.metrics);
        ClusterSim {
            clock: TickClock::new(spec.tick),
            models,
            nodes,
            scheduler,
            queue: JobQueue::new(),
            generator,
            trace_source,
            agents,
            meter,
            collector: Collector::new(),
            manager: None,
            budget_controller: None,
            true_power: TimeSeries::new(),
            finished: Vec::new(),
            cost_meter: CycleCostMeter::new(),
            commands_applied: 0,
            state_log: Vec::new(),
            next_submit_at: SimTime::ZERO,
            arrival_rng: factory.stream("arrivals", 0),
            journal: Journal::new(16_384).with_min_severity(Severity::Info),
            last_state: None,
            peak_temp_c: f64::NEG_INFINITY,
            failure_integral: 0.0,
            pool: None,
            faults: None,
            obs,
            obs_i,
            scratch_loads: Vec::new(),
            scratch_speeds: Vec::new(),
            scratch_samples: Vec::new(),
            scratch_views: Vec::new(),
            scratch_transitions: Vec::new(),
            scratch_down: Vec::new(),
            spec,
        }
    }

    /// Attaches a fault-injection schedule. Node crashes evict and requeue
    /// the hosted job (up to the injection's requeue cap), remove the node
    /// from scheduling, telemetry, and the candidate set, and rejoin it at
    /// the lowest DVFS level on reboot. Hangs freeze the DVFS actuator
    /// (commands fail and retry with backoff); silences and partitions
    /// stop agent samples, driving the manager's staleness/coverage
    /// fallback.
    ///
    /// # Panics
    /// Panics if the schedule targets nodes outside the cluster.
    pub fn with_faults(mut self, injection: FaultInjection) -> Self {
        let engine = FaultEngine::new(&injection.schedule, self.spec.total_nodes());
        self.faults = Some(FaultState {
            engine,
            requeue_cap: injection.requeue_cap,
            staleness_limit: injection.staleness_limit,
            jobs_requeued: 0,
            jobs_failed: 0,
            commands_failed: 0,
            retries: Vec::new(),
            fresh: BTreeSet::new(),
        });
        self
    }

    /// Overrides the worker pool used for node updates and power sums
    /// (default: the process-global pool). Results are bit-identical for
    /// any pool, by the pool's determinism contract.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a power manager (built by the caller from a
    /// [`ppc_core::ManagerConfig`] and node classification).
    ///
    /// # Panics
    /// Panics if a budget controller is already attached.
    pub fn with_manager(mut self, manager: PowerManager) -> Self {
        assert!(
            self.budget_controller.is_none(),
            "manager and budget controller are mutually exclusive"
        );
        self.manager = Some(manager);
        self
    }

    /// Attaches the related-work proportional-budget controller instead of
    /// the paper's power manager (architecture baseline: monitors *every*
    /// node, splits the budget proportionally each cycle, job-blind).
    ///
    /// # Panics
    /// Panics if a power manager is already attached.
    pub fn with_budget_controller(mut self, controller: ProportionalBudgetController) -> Self {
        assert!(
            self.manager.is_none(),
            "manager and budget controller are mutually exclusive"
        );
        self.budget_controller = Some(controller);
        self
    }

    /// The attached budget controller, if any.
    pub fn budget_controller(&self) -> Option<&ProportionalBudgetController> {
        self.budget_controller.as_ref()
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The true (unmetered) power trace.
    pub fn true_power(&self) -> &TimeSeries {
        &self.true_power
    }

    /// The facility meter (noisy readings, history).
    pub fn meter(&self) -> &SystemPowerMeter {
        &self.meter
    }

    /// Finished-job records, in completion order.
    pub fn finished(&self) -> &[JobRecord] {
        &self.finished
    }

    /// The attached manager, if any.
    pub fn manager(&self) -> Option<&PowerManager> {
        self.manager.as_ref()
    }

    /// Mutable access to the manager (runtime candidate-set changes).
    pub fn manager_mut(&mut self) -> Option<&mut PowerManager> {
        self.manager.as_mut()
    }

    /// Measured mean management cost per control cycle, seconds.
    pub fn mean_mgmt_cost_secs(&self) -> f64 {
        self.cost_meter.mean_cycle_secs()
    }

    /// Throttling commands actually applied to nodes.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }

    /// The fault engine, if fault injection is attached.
    pub fn fault_engine(&self) -> Option<&FaultEngine> {
        self.faults.as_ref().map(|f| &f.engine)
    }

    /// Jobs evicted from dead nodes and successfully requeued (0 without
    /// fault injection).
    pub fn jobs_requeued(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.jobs_requeued)
    }

    /// Jobs dropped after exhausting the requeue cap (0 without faults).
    pub fn jobs_failed(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.jobs_failed)
    }

    /// DVFS commands whose first send failed against a dead or frozen
    /// actuator (0 without faults).
    pub fn commands_failed(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.commands_failed)
    }

    /// The availability report for the run so far (`None` without fault
    /// injection). Open outages are charged up to the current instant.
    pub fn availability_report(&self) -> Option<AvailabilityReport> {
        let fs = self.faults.as_ref()?;
        let now = self.clock.now();
        let stats = fs.engine.stats_at(now);
        let (red_cycles, conservative_cycles, total_cycles) = match self.manager.as_ref() {
            Some(m) => {
                let s = m.stats();
                (s.red_cycles, s.conservative_cycles, s.cycles)
            }
            None => {
                let red = self
                    .state_log
                    .iter()
                    .filter(|(_, s)| *s == PowerState::Red)
                    .count() as u64;
                (red, 0, self.state_log.len() as u64)
            }
        };
        Some(AvailabilityReport::compute(&AvailabilityInputs {
            crashes: stats.crashes,
            hangs: stats.hangs,
            silences: stats.silences,
            repairs: stats.repairs,
            node_seconds_lost: stats.node_seconds_lost,
            repair_secs_total: stats.repair_secs_total,
            jobs_requeued: fs.jobs_requeued,
            jobs_failed: fs.jobs_failed,
            commands_failed: fs.commands_failed,
            red_cycles,
            conservative_cycles,
            total_cycles,
            node_count: self.spec.total_nodes(),
            window_secs: now.as_secs_f64(),
        }))
    }

    /// The bounded event journal (job lifecycle, state flips, thresholds).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The observability hub: span tree, metrics registry, flight
    /// recorder, and self-profiler.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Mutable hub access (exporters drain the profiler; tests poke
    /// instruments).
    pub fn obs_mut(&mut self) -> &mut ObsHub {
        &mut self.obs
    }

    /// FNV-1a fingerprint of every closed control-cycle span, for the
    /// determinism gate (bit-identical across worker-pool widths).
    pub fn span_fingerprint(&self) -> u64 {
        self.obs.spans.fingerprint()
    }

    /// FNV-1a fingerprint of the metrics registry, for the determinism
    /// gate.
    pub fn metrics_fingerprint(&self) -> u64 {
        self.obs.metrics.fingerprint()
    }

    /// Control-cycle state classifications (time, state).
    pub fn state_log(&self) -> &[(SimTime, PowerState)] {
        &self.state_log
    }

    /// Node power levels (index = node id), for assertions and reports.
    pub fn node_levels(&self) -> Vec<Level> {
        self.nodes.iter().map(Node::level).collect()
    }

    /// Fraction of nodes currently allocated to jobs.
    pub fn utilization(&self) -> f64 {
        self.scheduler.utilization()
    }

    /// Number of running jobs.
    pub fn running_jobs(&self) -> usize {
        self.scheduler.running_jobs().len()
    }

    /// Replays the fault schedule up to `now` and reacts to every edge:
    /// crashed nodes are evicted, de-scheduled, forgotten by telemetry and
    /// dropped from `A_candidate`; rebooted nodes rejoin at the lowest
    /// DVFS level and re-enter the candidate set as degraded (steady-green
    /// recovery promotes them back one level at a time).
    fn fault_tick(&mut self, now: SimTime) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        self.scratch_transitions.clear();
        self.scratch_transitions
            .extend_from_slice(fs.engine.advance_traced(now, &mut self.obs.spans));
        for i in 0..self.scratch_transitions.len() {
            match self.scratch_transitions[i] {
                FaultTransition::NodeDown(n) => {
                    // The node is dead: whatever command we owed it is moot.
                    fs.retries.retain(|r| r.node != n);
                    if let Some(mut job) = self.scheduler.evict_job_on(n) {
                        // Release dynamic SLA protection, mirroring the
                        // completion path: the job is no longer running.
                        if job.priority() == JobPriority::Critical {
                            for &m in job.nodes() {
                                if self.spec.privileged.contains(&m) {
                                    continue;
                                }
                                self.nodes[m.0 as usize].set_privileged(false);
                                if let Some(mgr) = self.manager.as_mut() {
                                    mgr.sets_mut().set_privileged(m, false);
                                }
                            }
                        }
                        let id = job.id();
                        if job.requeues() >= fs.requeue_cap {
                            fs.jobs_failed += 1;
                            let cap = fs.requeue_cap;
                            self.journal.record_with(now, Severity::Warn, "fault", || {
                                format!(
                                    "{id} failed: node {} died, requeue cap {cap} exhausted",
                                    n.0
                                )
                            });
                        } else {
                            job.requeue();
                            let attempt = job.requeues();
                            self.queue.push_front(job);
                            fs.jobs_requeued += 1;
                            self.journal.record_with(now, Severity::Warn, "fault", || {
                                format!(
                                    "{id} evicted: node {} died, requeued (attempt {attempt})",
                                    n.0
                                )
                            });
                        }
                    }
                    self.scheduler.set_node_down(n);
                    self.collector.forget(n);
                    if let Some(mgr) = self.manager.as_mut() {
                        mgr.note_node_down(n);
                    }
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} down", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} down", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::NodeUp(n) => {
                    self.scheduler.set_node_up(n);
                    let node = &mut self.nodes[n.0 as usize];
                    if !node.is_privileged() {
                        // ppc-lint: allow(panic-path): guarded by the is_privileged() check one line up
                        node.force_lowest().expect("node checked not privileged");
                    }
                    if let Some(mgr) = self.manager.as_mut() {
                        mgr.note_node_rejoined(n);
                    }
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} rebooted, rejoins at lowest level", n.0)
                    });
                }
                FaultTransition::HangStart(n) => {
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} DVFS actuator frozen", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} actuator frozen", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::HangEnd(n) => {
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} DVFS actuator thawed", n.0)
                    });
                }
                FaultTransition::SilenceStart(n) => {
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!("node {} telemetry dark", n.0)
                    });
                    self.obs.flight.trigger(
                        now,
                        format!("fault: node {} telemetry dark", n.0),
                        &self.obs.spans,
                        &self.obs.metrics,
                    );
                }
                FaultTransition::SilenceEnd(n) => {
                    self.journal.record_with(now, Severity::Info, "fault", || {
                        format!("node {} telemetry restored", n.0)
                    });
                }
            }
        }
        self.faults = Some(fs);
    }

    /// Advances the simulation by one tick.
    pub fn step(&mut self) {
        let dt = self.clock.dt_secs();
        let now0 = self.clock.now();

        // 0. Fault edges strike before anything else this tick, so a node
        //    that dies now neither hosts a new job nor contributes power.
        self.fault_tick(now0);

        // 1. Job arrival and placement. With a replay trace, jobs arrive
        //    at their recorded times; otherwise an empty queue is refilled
        //    (paper protocol), gated by the think-time gap.
        match self.trace_source.as_mut() {
            Some(src) => {
                for job in src.due_jobs(now0) {
                    self.queue.push(job);
                }
            }
            None => {
                if now0 >= self.next_submit_at
                    && self
                        .generator
                        .refill_to(&mut self.queue, self.spec.queue_depth, now0)
                    && !self.spec.think_time_mean.is_zero()
                {
                    let gap = self
                        .arrival_rng
                        .exponential(self.spec.think_time_mean.as_secs_f64());
                    self.next_submit_at = now0 + ppc_simkit::SimDuration::from_secs_f64(gap);
                }
            }
        }
        let started = self.scheduler.try_start(&mut self.queue, now0);
        if !started.is_empty() {
            // `try_start` pushes placed jobs in start order, so the newly
            // started jobs are exactly the run-queue tail — no per-id scan.
            let running = self.scheduler.running_jobs();
            let newly = &running[running.len() - started.len()..];
            debug_assert!(
                newly.iter().map(|j| j.id()).eq(started.iter().copied()),
                "started ids must match the run-queue tail"
            );
            let protect_critical = self.spec.critical_job_fraction > 0.0;
            for job in newly {
                self.journal.record_with(now0, Severity::Info, "job", || {
                    format!(
                        "{} started: {} class {} x{} on {} nodes ({:?})",
                        job.id(),
                        job.app(),
                        job.class(),
                        job.nprocs(),
                        job.nodes().len(),
                        job.priority()
                    )
                });
                // SLA protection: a critical job's nodes join
                // A_uncontrollable for its lifetime (the paper's dynamic
                // candidate set).
                if protect_critical && job.priority() == JobPriority::Critical {
                    for &n in job.nodes() {
                        let node = &mut self.nodes[n.0 as usize];
                        if node.is_privileged() {
                            // Already protected (statically privileged, or
                            // shared start tick with another critical job).
                            continue;
                        }
                        // SLA work gets full performance: restore the node
                        // to its top level (it may carry a degradation from
                        // earlier capping), then freeze it.
                        let top = node.highest_level();
                        // ppc-lint: allow(panic-path): the node is unfrozen here; set_level only errors on privileged nodes
                        node.set_level(top).expect("node checked not privileged");
                        node.set_privileged(true);
                        if let Some(m) = self.manager.as_mut() {
                            m.sets_mut().set_privileged(n, true);
                        }
                    }
                }
            }
        }

        // 2. Node operating states for this tick, derived from the phase
        //    each node's job is in. Computed serially (borrows the
        //    scheduler), applied to nodes in parallel via the pool. The
        //    load/speed buffers are scratch fields reused across ticks.
        self.scratch_loads.clear();
        self.scratch_loads.extend(self.nodes.iter().map(
            |n| match self.scheduler.load_on(n.id()) {
                Some(load) => OperatingState {
                    cpu_util: load.cpu_util,
                    mem_used_bytes: load.mem_bytes,
                    nic_bytes: (load.nic_fraction * n.spec().nic.bandwidth_bytes_per_sec * dt)
                        as u64,
                },
                None => OperatingState::IDLE,
            },
        ));
        // Down nodes are dark: they neither advance counters nor draw
        // power until their reboot. The mask is all-false without faults.
        self.scratch_down.clear();
        match self.faults.as_ref() {
            Some(fs) => self
                .scratch_down
                .extend(self.nodes.iter().map(|n| fs.engine.is_down(n.id()))),
            None => self.scratch_down.resize(self.nodes.len(), false),
        }
        let pool: &WorkerPool = match self.pool.as_deref() {
            Some(p) => p,
            None => WorkerPool::global(),
        };
        let loads = &self.scratch_loads;
        let down = &self.scratch_down;
        pool.for_each_mut(&mut self.nodes, |i, node| {
            if !down[i] {
                node.run_interval(loads[i], dt);
            }
        });

        // 3. Jobs progress at the min rate over their members' speeds.
        self.scratch_speeds.clear();
        self.scratch_speeds
            .extend(self.nodes.iter().map(Node::relative_speed));
        let now1 = self.clock.advance();
        let speeds = &self.scratch_speeds;
        let speed_of = |n: NodeId| speeds[n.0 as usize];
        let mut records = self.scheduler.advance(dt, now1, &speed_of);
        // Release SLA protection when critical jobs complete — unless the
        // node is statically privileged in the cluster spec.
        for r in &records {
            if r.priority == JobPriority::Critical {
                for &n in &r.nodes {
                    if self.spec.privileged.contains(&n) {
                        continue;
                    }
                    self.nodes[n.0 as usize].set_privileged(false);
                    if let Some(m) = self.manager.as_mut() {
                        m.sets_mut().set_privileged(n, false);
                    }
                }
            }
        }
        for r in &records {
            self.journal.record_with(now1, Severity::Info, "job", || {
                format!(
                    "{} finished: T={:.1}s (baseline {:.1}s, throttled {:.0}s)",
                    r.id, r.actual_secs, r.baseline_secs, r.throttled_secs
                )
            });
        }
        self.finished.append(&mut records);

        // 3b. Thermal accounting (extension; no-op without thermal models).
        let mut rate_sum = 0.0;
        let mut thermal_nodes = 0u32;
        for n in &self.nodes {
            let Some(t) = n.temperature_c() else { continue };
            let Some(thermal) = n.spec().thermal else {
                continue;
            };
            self.peak_temp_c = self.peak_temp_c.max(t);
            let Some(rate) = n.relative_failure_rate(thermal.ambient_c) else {
                continue;
            };
            rate_sum += rate;
            thermal_nodes += 1;
        }
        if thermal_nodes > 0 {
            self.failure_integral += rate_sum / thermal_nodes as f64 * dt;
        }

        // 4. Power sensing.
        let down = &self.scratch_down;
        let true_power_w =
            pool.sum_f64(&self.nodes, |i, n| if down[i] { 0.0 } else { n.power_w() });
        self.true_power.push(now1, true_power_w);
        let reading = self.meter.read(true_power_w, now1);
        match reading {
            MeterReading::Held(w) => {
                self.journal.record_with(now1, Severity::Info, "meter", || {
                    format!("meter dropout: holding last good reading {w:.1} W")
                });
            }
            MeterReading::Gap => {
                self.journal.record_with(now1, Severity::Warn, "meter", || {
                    "meter dropout before any good reading: control cycle skipped".to_string()
                });
            }
            MeterReading::Fresh(_) => {}
        }

        // 5/6. Profiling, collection, control, actuation. A meter gap
        // carries no information: acting on it (the old code fed the
        // controller 0.0 W) would read as maximal headroom and promote
        // every degraded node, so the cycle is skipped instead.
        if let Some(metered_w) = reading.value() {
            if self.manager.is_some() {
                self.control_cycle(now1, metered_w);
            } else if self.budget_controller.is_some() {
                self.budget_cycle(now1, metered_w);
            }
        }
    }

    /// Runs the proportional-budget baseline's cycle: sample **all**
    /// controllable nodes (this architecture has no candidate subset),
    /// split the budget, and apply the resulting absolute levels.
    fn budget_cycle(&mut self, now: SimTime, metered_w: f64) {
        // ppc-lint: allow(panic-path): step() dispatches here only when a budget controller is attached
        let controller = self.budget_controller.as_mut().expect("checked by caller");
        self.obs.spans.open("cycle", now);
        let sample_t = self.obs.profile.start();
        self.obs.spans.open("sample", now);
        self.scratch_views.clear();
        for node in &self.nodes {
            if node.is_privileged() {
                continue;
            }
            if let Some(fs) = self.faults.as_ref() {
                // Dead nodes have no agent; silent ones produce no samples.
                if fs.engine.is_down(node.id()) || fs.engine.is_silent(node.id()) {
                    continue;
                }
            }
            let idx = node.id().0 as usize;
            let Some(sample) = self.agents[idx].sample(node, now) else {
                continue; // dropped sample: the node keeps its level this cycle
            };
            self.collector.ingest(sample);
            self.scratch_views.push(BudgetNodeView {
                node: node.id(),
                level: node.level(),
                highest: node.highest_level(),
                state: sample.state,
                power_w: sample.power_w,
            });
        }
        self.obs
            .spans
            .attr("samples", AttrValue::U64(self.scratch_views.len() as u64));
        self.obs.spans.close(now);
        self.obs.profile.stop("sample", sample_t);
        let control_t = self.obs.profile.start();
        self.obs.spans.open("control", now);
        let models = &self.models;
        let views = &self.scratch_views;
        let (state, commands) = self.cost_meter.measure(|| {
            controller.cycle(metered_w, views, &|n: NodeId| {
                Arc::clone(&models[n.0 as usize])
            })
        });
        self.obs.spans.attr("state", AttrValue::Str(state.name()));
        self.obs
            .spans
            .attr("commands", AttrValue::U64(commands.len() as u64));
        self.obs.spans.close(now);
        self.obs.profile.stop("control", control_t);
        self.state_log.push((now, state));
        let red_entered = state == PowerState::Red && self.last_state != Some(PowerState::Red);
        if self.last_state != Some(state) {
            self.journal.record_with(
                now,
                if state == PowerState::Red {
                    Severity::Warn
                } else {
                    Severity::Info
                },
                "state",
                || {
                    format!(
                        "budget controller: state -> {state} at {:.2} kW",
                        metered_w / 1e3
                    )
                },
            );
            self.last_state = Some(state);
        }
        let actuate_t = self.obs.profile.start();
        self.obs.spans.open("actuate", now);
        self.obs
            .spans
            .attr("commands", AttrValue::U64(commands.len() as u64));
        self.process_retries(now);
        for cmd in &commands {
            self.apply_command(cmd.node, cmd.level, now);
        }
        self.obs.spans.close(now);
        self.obs.profile.stop("actuate", actuate_t);
        self.obs.metrics.inc(self.obs_i.cycles, 1);
        self.obs.metrics.set(self.obs_i.metered_power_w, metered_w);
        self.obs
            .metrics
            .observe(self.obs_i.selection_size, commands.len() as f64);
        if state == PowerState::Red {
            self.obs.metrics.inc(self.obs_i.red_dwell_cycles, 1);
        }
        if red_entered {
            self.obs.metrics.inc(self.obs_i.red_entries, 1);
        }
        self.obs
            .metrics
            .set(self.obs_i.journal_dropped, self.journal.dropped() as f64);
        self.obs.spans.attr("state", AttrValue::Str(state.name()));
        self.obs.spans.close(now);
        if red_entered {
            self.obs
                .flight
                .trigger(now, "red-entry", &self.obs.spans, &self.obs.metrics);
        }
    }

    /// Runs the sampling agents and the manager's control cycle, applying
    /// the resulting commands.
    fn control_cycle(&mut self, now: SimTime, metered_w: f64) {
        // ppc-lint: allow(panic-path): step() dispatches here only when a manager is attached
        let manager = self.manager.as_mut().expect("checked by caller");
        self.obs.spans.open("cycle", now);

        // Agents run on candidate nodes only; monitoring everything would
        // be the unscalable design Figure 5 warns about. The sample buffer
        // is scratch, reused across cycles. Dead and silenced nodes
        // deliver nothing — their collector entries go stale.
        let sample_t = self.obs.profile.start();
        self.obs.spans.open("sample", now);
        self.scratch_samples.clear();
        for &id in manager.sets().candidates() {
            if let Some(fs) = self.faults.as_ref() {
                if fs.engine.is_down(id) || fs.engine.is_silent(id) {
                    continue;
                }
            }
            let idx = id.0 as usize;
            if let Some(sample) = self.agents[idx].sample(&self.nodes[idx], now) {
                self.scratch_samples.push(sample);
            }
        }
        self.obs
            .spans
            .attr("samples", AttrValue::U64(self.scratch_samples.len() as u64));
        self.obs.spans.close(now);
        self.obs.profile.stop("sample", sample_t);

        // Everything the management node computes per cycle is measured:
        // ingestion, observation building, classification, selection. Job
        // membership is borrowed straight from the run-queue — no clones.
        // Under fault injection the staleness filter runs first: only
        // candidates with fresh samples are selectable, and the fresh
        // fraction feeds the manager's coverage-floor fallback.
        let control_t = self.obs.profile.start();
        let models = &self.models;
        let collector = &mut self.collector;
        let nodes = &self.nodes;
        let scheduler = &self.scheduler;
        let samples = &self.scratch_samples;
        let faults = self.faults.as_mut();
        let spans = &mut self.obs.spans;
        let outcome = self.cost_meter.measure(|| {
            collector.ingest_batch_traced(samples, now, spans);
            let model_of = |n: NodeId| Arc::clone(&models[n.0 as usize]);
            let jobs = || scheduler.running_jobs().iter().map(|j| (j.id(), j.nodes()));
            match faults {
                Some(fs) => {
                    fs.fresh.clear();
                    let candidates = manager.sets().candidates();
                    for &id in candidates {
                        if collector.is_fresh(id, now, fs.staleness_limit) {
                            fs.fresh.insert(id);
                        }
                    }
                    let coverage = if candidates.is_empty() {
                        1.0
                    } else {
                        fs.fresh.len() as f64 / candidates.len() as f64
                    };
                    spans.open("observe", now);
                    let observations = observe_jobs(collector, jobs(), &fs.fresh, &model_of);
                    spans.attr("jobs", AttrValue::U64(observations.len() as u64));
                    spans.attr("coverage", AttrValue::F64(coverage));
                    spans.close(now);
                    manager.control_cycle_traced(
                        metered_w,
                        observations,
                        &NodesView(nodes),
                        coverage,
                        now,
                        spans,
                    )
                }
                None => {
                    spans.open("observe", now);
                    let observations =
                        observe_jobs(collector, jobs(), manager.sets().candidates(), &model_of);
                    spans.attr("jobs", AttrValue::U64(observations.len() as u64));
                    spans.close(now);
                    manager.control_cycle_traced(
                        metered_w,
                        observations,
                        &NodesView(nodes),
                        1.0,
                        now,
                        spans,
                    )
                }
            }
        });
        self.obs.profile.stop("control", control_t);
        self.state_log.push((now, outcome.state));
        let red_entered =
            outcome.state == PowerState::Red && self.last_state != Some(PowerState::Red);
        if self.last_state != Some(outcome.state) {
            let severity = match outcome.state {
                PowerState::Red => Severity::Warn,
                _ => Severity::Info,
            };
            self.journal.record_with(now, severity, "state", || {
                format!(
                    "power state -> {} at {:.2} kW",
                    outcome.state,
                    metered_w / 1e3
                )
            });
            self.last_state = Some(outcome.state);
        }
        if outcome.thresholds_adjusted {
            self.journal
                .record_with(now, Severity::Info, "threshold", || {
                    format!(
                        "adjusted: P_L={:.2} kW, P_H={:.2} kW",
                        outcome.thresholds.p_low_w() / 1e3,
                        outcome.thresholds.p_high_w() / 1e3
                    )
                });
        }

        // Training period: observe only, never throttle.
        let in_training = self
            .manager
            .as_ref()
            // ppc-lint: allow(panic-path): control_cycle() runs only with a manager attached (see step())
            .expect("checked by caller")
            .learner()
            .in_training();
        if !in_training {
            let actuate_t = self.obs.profile.start();
            self.obs.spans.open("actuate", now);
            self.obs
                .spans
                .attr("commands", AttrValue::U64(outcome.commands.len() as u64));
            self.process_retries(now);
            for cmd in &outcome.commands {
                self.apply_command(cmd.node, cmd.level, now);
            }
            if let Some(fs) = self.faults.as_ref() {
                self.obs
                    .spans
                    .attr("retries_pending", AttrValue::U64(fs.retries.len() as u64));
            }
            self.obs.spans.close(now);
            self.obs.profile.stop("actuate", actuate_t);
        }

        // Per-cycle instruments, then the root span, then (possibly) the
        // flight recorder — in that order so a red-entry snapshot captures
        // this very cycle's spans and up-to-date registry.
        self.obs.metrics.inc(self.obs_i.cycles, 1);
        self.obs.metrics.set(self.obs_i.metered_power_w, metered_w);
        self.obs
            .metrics
            .observe(self.obs_i.selection_size, outcome.commands.len() as f64);
        if outcome.state == PowerState::Red {
            self.obs.metrics.inc(self.obs_i.red_dwell_cycles, 1);
        }
        if red_entered {
            self.obs.metrics.inc(self.obs_i.red_entries, 1);
        }
        self.obs
            .metrics
            .set(self.obs_i.journal_dropped, self.journal.dropped() as f64);
        self.obs
            .spans
            .attr("state", AttrValue::Str(outcome.state.name()));
        self.obs.spans.close(now);
        if red_entered {
            self.obs
                .flight
                .trigger(now, "red-entry", &self.obs.spans, &self.obs.metrics);
        }
    }

    /// Sends one throttling command to a node, routing around faults.
    ///
    /// A healthy node applies it directly. A dead node's command is
    /// dropped outright (the node rejoins at the lowest level anyway); a
    /// frozen actuator queues the command for retry with backoff. Either
    /// failure counts once in `commands_failed`, and because the control
    /// loop reads actual node levels (`LevelView`), the next cycle sees
    /// the un-actuated truth and re-plans — the reconcile path.
    fn apply_command(&mut self, node: NodeId, level: Level, now: SimTime) {
        let Some(fs) = self.faults.as_mut() else {
            // Privileged nodes are never candidates, so set_level cannot
            // hit the Privileged error; InvalidLevel cannot happen because
            // commands derive from the node's own ladder.
            self.nodes[node.0 as usize]
                .set_level(level)
                // ppc-lint: allow(panic-path): candidates are never privileged and levels come from the node's own ladder
                .expect("commands are validated against the ladder");
            self.commands_applied += 1;
            self.obs.metrics.inc(self.obs_i.commands_applied, 1);
            return;
        };
        // A newer command supersedes any queued retry for the node.
        fs.retries.retain(|r| r.node != node);
        if fs.engine.is_down(node) {
            fs.commands_failed += 1;
            self.obs.metrics.inc(self.obs_i.commands_failed, 1);
            self.journal.record_with(now, Severity::Warn, "fault", || {
                format!("command to dead node {} dropped", node.0)
            });
            return;
        }
        if fs.engine.is_hung(node) {
            fs.commands_failed += 1;
            self.obs.metrics.inc(self.obs_i.commands_failed, 1);
            fs.retries.push(PendingRetry {
                node,
                level,
                attempts: 1,
                cooldown: 1,
            });
            self.journal.record_with(now, Severity::Warn, "fault", || {
                format!(
                    "command to node {} timed out (actuator frozen), will retry",
                    node.0
                )
            });
            return;
        }
        self.nodes[node.0 as usize]
            .set_level(level)
            // ppc-lint: allow(panic-path): candidates are never privileged and levels come from the node's own ladder
            .expect("commands are validated against the ladder");
        self.commands_applied += 1;
        self.obs.metrics.inc(self.obs_i.commands_applied, 1);
    }

    /// Walks the retry queue: applies commands whose actuator thawed,
    /// backs off ones still frozen (1, 2, 4 cycles), and drops commands
    /// whose node died or whose attempts ran out.
    fn process_retries(&mut self, now: SimTime) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        let mut i = 0;
        while i < fs.retries.len() {
            if fs.retries[i].cooldown > 0 {
                fs.retries[i].cooldown -= 1;
                i += 1;
                continue;
            }
            let r = fs.retries[i];
            if fs.engine.is_down(r.node) {
                fs.retries.remove(i);
                continue;
            }
            if fs.engine.is_hung(r.node) {
                if r.attempts >= MAX_COMMAND_ATTEMPTS {
                    fs.retries.remove(i);
                    self.journal.record_with(now, Severity::Warn, "fault", || {
                        format!(
                            "giving up on node {} after {} attempts (actuator still frozen)",
                            r.node.0, r.attempts
                        )
                    });
                } else {
                    fs.retries[i].attempts += 1;
                    // 1 << attempts: cooldowns of 2 then 4 cycles.
                    fs.retries[i].cooldown = 1 << r.attempts;
                    self.obs.metrics.inc(self.obs_i.actuation_retries, 1);
                    i += 1;
                }
                continue;
            }
            self.nodes[r.node.0 as usize]
                .set_level(r.level)
                // ppc-lint: allow(panic-path): retries re-validate liveness above; levels come from the node's own ladder
                .expect("commands are validated against the ladder");
            self.commands_applied += 1;
            self.obs.metrics.inc(self.obs_i.actuation_retries, 1);
            self.obs.metrics.inc(self.obs_i.commands_applied, 1);
            self.journal.record_with(now, Severity::Info, "fault", || {
                format!(
                    "retried command applied: node {} -> {:?}",
                    r.node.0, r.level
                )
            });
            fs.retries.remove(i);
        }
        self.faults = Some(fs);
    }

    /// Peak die temperature observed, °C (`None` without a thermal model).
    pub fn peak_temperature_c(&self) -> Option<f64> {
        self.thermal_enabled().then_some(self.peak_temp_c)
    }

    /// True if any node carries a thermal model.
    fn thermal_enabled(&self) -> bool {
        self.spec.node_spec.thermal.is_some()
            || self
                .spec
                .extra_groups
                .iter()
                .any(|g| g.spec.thermal.is_some())
    }

    /// Integral of the cluster-mean relative failure rate over time, in
    /// rate-seconds (`None` without a thermal model). A machine held at
    /// ambient for T seconds scores exactly T; running hot scores more —
    /// the reliability analogue of ΔP×T.
    pub fn failure_rate_integral(&self) -> Option<f64> {
        self.thermal_enabled().then_some(self.failure_integral)
    }

    /// Runs the simulation for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let ticks = self.clock.ticks_in(duration);
        for _ in 0..ticks {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::{ManagerConfig, NodeSets, PolicyKind};

    fn managed_mini(nodes: u32, policy: PolicyKind, provision_fraction: f64) -> ClusterSim {
        let mut spec = ClusterSpec::mini(nodes);
        spec.provision_fraction = provision_fraction;
        let sets = NodeSets::new(spec.node_ids(), spec.privileged.iter().copied());
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), policy)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        ClusterSim::new(spec).with_manager(manager)
    }

    #[test]
    fn unmanaged_sim_runs_jobs_and_records_power() {
        let mut sim = ClusterSim::new(ClusterSpec::mini(4));
        sim.run_for(SimDuration::from_secs(300));
        assert_eq!(sim.true_power().len(), 300);
        assert!(sim.utilization() > 0.0, "jobs should be running");
        // All nodes stay at the top level without a manager.
        assert!(sim.node_levels().iter().all(|&l| l == Level::new(9)));
        let p = sim.true_power().max().unwrap();
        // 4 busy Tianhe nodes: somewhere between idle (4×145) and max (4×341).
        assert!(p > 580.0 && p < 1_370.0, "peak={p}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = ClusterSim::new(ClusterSpec::mini(4));
            sim.run_for(SimDuration::from_secs(200));
            (
                sim.true_power().values().to_vec(),
                sim.finished().len(),
                sim.utilization(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "power traces must be bit-identical");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn tight_provision_forces_throttling() {
        // Provision at 55% of theoretical peak: the busy mini cluster
        // overshoots P_H quickly, forcing red/yellow cycles.
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.55);
        sim.run_for(SimDuration::from_secs(300));
        assert!(sim.commands_applied() > 0, "capping must engage");
        let stats = sim.manager().unwrap().stats();
        assert!(stats.yellow_cycles + stats.red_cycles > 0);
        // Some node must have been degraded at some point; after red
        // cycles at least the state log shows non-green.
        assert!(sim.state_log().iter().any(|(_, s)| *s != PowerState::Green));
    }

    #[test]
    fn capping_caps_the_peak() {
        let run = |policy: Option<PolicyKind>| {
            let mut sim = match policy {
                Some(p) => managed_mini(4, p, 0.70),
                None => ClusterSim::new({
                    let mut s = ClusterSpec::mini(4);
                    s.provision_fraction = 0.70;
                    s
                }),
            };
            sim.run_for(SimDuration::from_secs(600));
            sim.true_power().max().unwrap()
        };
        let uncapped = run(None);
        let capped = run(Some(PolicyKind::Mpc));
        assert!(
            capped < uncapped,
            "capped peak {capped} must be below uncapped {uncapped}"
        );
    }

    #[test]
    fn training_period_never_throttles() {
        let mut spec = ClusterSpec::mini(4);
        spec.provision_fraction = 0.55; // would throttle immediately if active
        let sets = NodeSets::new(spec.node_ids(), []);
        let config = ManagerConfig {
            training_cycles: 200,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        sim.run_for(SimDuration::from_secs(150));
        assert_eq!(sim.commands_applied(), 0, "training must not throttle");
        assert!(sim.manager().unwrap().learner().in_training());
        // Peak observation is happening.
        assert!(sim.manager().unwrap().learner().observed_peak_w() > 0.0);
    }

    #[test]
    fn crash_evicts_requeues_and_rejoins_at_lowest_level() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(60),
            node: NodeId(1),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(30),
            },
        }]);
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.70);
        sim = sim.with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(70));
        // Mid-outage: the node is down, off the candidate set, powerless.
        assert!(sim.fault_engine().unwrap().is_down(NodeId(1)));
        assert!(!sim
            .manager()
            .unwrap()
            .sets()
            .candidates()
            .contains(&NodeId(1)));
        assert_eq!(
            sim.jobs_requeued() + sim.jobs_failed(),
            1,
            "mini cluster is saturated"
        );
        sim.run_for(SimDuration::from_secs(60));
        // Rebooted: back in the candidate set at the lowest DVFS level.
        assert!(!sim.fault_engine().unwrap().is_down(NodeId(1)));
        assert!(sim
            .manager()
            .unwrap()
            .sets()
            .candidates()
            .contains(&NodeId(1)));
        let report = sim.availability_report().unwrap();
        assert_eq!(report.crashes, 1);
        assert!((report.mttr_secs - 30.0).abs() < 1.0);
        assert!(report.availability < 1.0);
    }

    #[test]
    fn down_node_draws_no_power() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(50),
            node: NodeId(0),
            kind: FaultKind::Crash {
                reboot: SimDuration::from_secs(1_000),
            },
        }]);
        let healthy = {
            let mut sim = ClusterSim::new(ClusterSpec::mini(4));
            sim.run_for(SimDuration::from_secs(100));
            sim.true_power().values().to_vec()
        };
        let mut sim =
            ClusterSim::new(ClusterSpec::mini(4)).with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(100));
        let faulted = sim.true_power().values().to_vec();
        // Identical until the crash, strictly lower afterwards.
        assert_eq!(healthy[..49], faulted[..49]);
        assert!(faulted[60] < healthy[60] * 0.9);
    }

    #[test]
    fn hung_actuator_fails_commands_and_retries() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Freeze every node's actuator over a window in which the tightly
        // provisioned cluster is certain to issue commands.
        let events = (0..4)
            .map(|n| FaultEvent {
                at: SimTime::from_secs(20),
                node: NodeId(n),
                kind: FaultKind::Hang {
                    duration: SimDuration::from_secs(120),
                },
            })
            .collect();
        let mut sim = managed_mini(4, PolicyKind::Mpc, 0.55)
            .with_faults(FaultInjection::new(FaultSchedule::new(events)));
        sim.run_for(SimDuration::from_secs(300));
        assert!(
            sim.commands_failed() > 0,
            "frozen actuators must fail commands"
        );
        assert!(
            sim.commands_applied() > 0,
            "commands succeed after the thaw"
        );
    }

    #[test]
    fn silence_starves_telemetry_into_conservative_mode() {
        use ppc_faults::{FaultEvent, FaultInjection, FaultKind, FaultSchedule};
        // Darken the whole cluster's telemetry for a long window; coverage
        // hits 0 and every capping cycle in the window runs conservative.
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_secs(30),
            node: NodeId(0),
            kind: FaultKind::SubtreePartition {
                width: 4,
                duration: SimDuration::from_secs(200),
            },
        }]);
        let mut sim =
            managed_mini(4, PolicyKind::Mpc, 0.55).with_faults(FaultInjection::new(schedule));
        sim.run_for(SimDuration::from_secs(300));
        let stats = sim.manager().unwrap().stats();
        assert!(stats.conservative_cycles > 0, "coverage floor must trip");
        let report = sim.availability_report().unwrap();
        assert_eq!(report.silences, 4);
        assert!(report.conservative_fraction > 0.0);
    }

    #[test]
    fn privileged_nodes_keep_top_level_under_red_pressure() {
        let mut spec = ClusterSpec::mini(4);
        spec.provision_fraction = 0.55;
        spec.privileged = vec![NodeId(0)];
        let sets = NodeSets::new(spec.node_ids(), [NodeId(0)]);
        let config = ManagerConfig {
            training_cycles: 0,
            ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::MpcC)
        };
        let manager = PowerManager::new(config, sets).unwrap();
        let mut sim = ClusterSim::new(spec).with_manager(manager);
        sim.run_for(SimDuration::from_secs(300));
        assert!(sim.commands_applied() > 0);
        let levels = sim.node_levels();
        assert_eq!(levels[0], Level::new(9), "privileged node untouched");
        assert!(
            levels[1..].iter().any(|&l| l < Level::new(9)),
            "other nodes were throttled"
        );
    }
}
