//! # ppc-cluster — the integrated experiment environment
//!
//! Wires every substrate into the paper's testbed: a 128-node Tianhe-1A
//! variant ([`spec::ClusterSpec::tianhe_1a_variant`]) running the random
//! NPB CLASS=D job mix, sensed by per-node profiling agents and a facility
//! meter, and governed by the power manager.
//!
//! * [`spec`] — cluster-level configuration (node model, size, tick,
//!   provision capability, sensing noise);
//! * [`sim`] — the tick loop: refill queue → start jobs → advance node
//!   states (in parallel) → advance jobs at min-member-rate → meter →
//!   agents → control cycle → apply throttling commands;
//! * [`experiment`] — the paper's protocol: an uncapped training period
//!   that learns `P_peak`, then a measured period under a policy; plus the
//!   unmanaged baseline run that Figures 6/7 normalize against;
//! * [`output`] — text tables / CSV / JSON for the figure regenerators.

pub mod columns;
pub mod experiment;
pub mod output;
pub mod sim;
pub mod spec;

pub use columns::{DirtySet, NodeColumns};
pub use experiment::{
    build_sim, run_experiment, run_experiment_full, ExperimentConfig, ExperimentOutcome,
};
pub use sim::{ClusterSim, EvalMode};
pub use spec::ClusterSpec;
