/root/repo/target/debug/deps/fuzz_sim-815d8725215064de.d: tests/fuzz_sim.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_sim-815d8725215064de.rmeta: tests/fuzz_sim.rs Cargo.toml

tests/fuzz_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
