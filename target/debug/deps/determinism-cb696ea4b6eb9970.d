/root/repo/target/debug/deps/determinism-cb696ea4b6eb9970.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cb696ea4b6eb9970: tests/determinism.rs

tests/determinism.rs:
