/root/repo/target/debug/deps/rand-4b8ac8ef5547cf01.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4b8ac8ef5547cf01.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4b8ac8ef5547cf01.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
