/root/repo/target/debug/deps/ppc_metrics-2556790ecf9bd8cb.d: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/ppc_metrics-2556790ecf9bd8cb: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/availability.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
