/root/repo/target/debug/deps/ppc_metrics-9b6d2ce471779691.d: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/libppc_metrics-9b6d2ce471779691.rlib: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/libppc_metrics-9b6d2ce471779691.rmeta: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/availability.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
