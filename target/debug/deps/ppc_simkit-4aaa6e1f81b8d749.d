/root/repo/target/debug/deps/ppc_simkit-4aaa6e1f81b8d749.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libppc_simkit-4aaa6e1f81b8d749.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs Cargo.toml

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/error.rs:
crates/simkit/src/journal.rs:
crates/simkit/src/par.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
