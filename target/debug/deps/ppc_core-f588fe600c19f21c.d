/root/repo/target/debug/deps/ppc_core-f588fe600c19f21c.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/capping.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/manager.rs crates/core/src/observe.rs crates/core/src/policy/mod.rs crates/core/src/policy/bfp.rs crates/core/src/policy/hri.rs crates/core/src/policy/hri_c.rs crates/core/src/policy/lpc.rs crates/core/src/policy/lpc_c.rs crates/core/src/policy/mpc.rs crates/core/src/policy/mpc_c.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/uniform.rs crates/core/src/sets.rs crates/core/src/state.rs crates/core/src/thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libppc_core-f588fe600c19f21c.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/capping.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/manager.rs crates/core/src/observe.rs crates/core/src/policy/mod.rs crates/core/src/policy/bfp.rs crates/core/src/policy/hri.rs crates/core/src/policy/hri_c.rs crates/core/src/policy/lpc.rs crates/core/src/policy/lpc_c.rs crates/core/src/policy/mpc.rs crates/core/src/policy/mpc_c.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/uniform.rs crates/core/src/sets.rs crates/core/src/state.rs crates/core/src/thresholds.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/capping.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/manager.rs:
crates/core/src/observe.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/bfp.rs:
crates/core/src/policy/hri.rs:
crates/core/src/policy/hri_c.rs:
crates/core/src/policy/lpc.rs:
crates/core/src/policy/lpc_c.rs:
crates/core/src/policy/mpc.rs:
crates/core/src/policy/mpc_c.rs:
crates/core/src/policy/round_robin.rs:
crates/core/src/policy/uniform.rs:
crates/core/src/sets.rs:
crates/core/src/state.rs:
crates/core/src/thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
