/root/repo/target/debug/deps/faults-2060b6bb9e522bdb.d: tests/faults.rs

/root/repo/target/debug/deps/faults-2060b6bb9e522bdb: tests/faults.rs

tests/faults.rs:
