/root/repo/target/debug/deps/budget_baseline-893c6e4c1bfbf358.d: tests/budget_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libbudget_baseline-893c6e4c1bfbf358.rmeta: tests/budget_baseline.rs Cargo.toml

tests/budget_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
