/root/repo/target/debug/deps/ppc_faults-1590cb116b4d63d5.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/ppc_faults-1590cb116b4d63d5: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
