/root/repo/target/debug/deps/safety-d7362afc7657e8cf.d: tests/safety.rs Cargo.toml

/root/repo/target/debug/deps/libsafety-d7362afc7657e8cf.rmeta: tests/safety.rs Cargo.toml

tests/safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
