/root/repo/target/debug/deps/ppc_telemetry-b9437b3f34743554.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/debug/deps/libppc_telemetry-b9437b3f34743554.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/debug/deps/libppc_telemetry-b9437b3f34743554.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
