/root/repo/target/debug/deps/ppc_metrics-0f58e1687e565829.d: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libppc_metrics-0f58e1687e565829.rmeta: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/availability.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
