/root/repo/target/debug/deps/ppc_cluster-090e6d2143d9323c.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libppc_cluster-090e6d2143d9323c.rlib: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libppc_cluster-090e6d2143d9323c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
