/root/repo/target/debug/deps/ppc_simkit-0ec221a6244e4ed0.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libppc_simkit-0ec221a6244e4ed0.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libppc_simkit-0ec221a6244e4ed0.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/error.rs:
crates/simkit/src/journal.rs:
crates/simkit/src/par.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
