/root/repo/target/debug/deps/replay-14253dd6c2ddff49.d: tests/replay.rs

/root/repo/target/debug/deps/replay-14253dd6c2ddff49: tests/replay.rs

tests/replay.rs:
