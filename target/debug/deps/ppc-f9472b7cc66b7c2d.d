/root/repo/target/debug/deps/ppc-f9472b7cc66b7c2d.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libppc-f9472b7cc66b7c2d.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
