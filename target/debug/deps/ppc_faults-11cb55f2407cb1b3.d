/root/repo/target/debug/deps/ppc_faults-11cb55f2407cb1b3.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/libppc_faults-11cb55f2407cb1b3.rlib: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/libppc_faults-11cb55f2407cb1b3.rmeta: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
