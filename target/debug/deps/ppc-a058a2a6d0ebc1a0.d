/root/repo/target/debug/deps/ppc-a058a2a6d0ebc1a0.d: src/main.rs

/root/repo/target/debug/deps/ppc-a058a2a6d0ebc1a0: src/main.rs

src/main.rs:
