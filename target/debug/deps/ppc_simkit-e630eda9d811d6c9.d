/root/repo/target/debug/deps/ppc_simkit-e630eda9d811d6c9.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libppc_simkit-e630eda9d811d6c9.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libppc_simkit-e630eda9d811d6c9.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/error.rs:
crates/simkit/src/journal.rs:
crates/simkit/src/par.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
