/root/repo/target/debug/deps/ppc_workload-b6d738a87d3d0823.d: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libppc_workload-b6d738a87d3d0823.rmeta: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/app.rs:
crates/workload/src/generator.rs:
crates/workload/src/job.rs:
crates/workload/src/model.rs:
crates/workload/src/phase.rs:
crates/workload/src/queue.rs:
crates/workload/src/replay.rs:
crates/workload/src/scaling.rs:
crates/workload/src/scheduler.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
