/root/repo/target/debug/deps/ppc_bench-67f9783ba87a1ef0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ppc_bench-67f9783ba87a1ef0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
