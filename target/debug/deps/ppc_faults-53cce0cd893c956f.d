/root/repo/target/debug/deps/ppc_faults-53cce0cd893c956f.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/ppc_faults-53cce0cd893c956f: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
