/root/repo/target/debug/deps/ppc_cluster-311b08e4eb7ec20a.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/ppc_cluster-311b08e4eb7ec20a: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
