/root/repo/target/debug/deps/ppc-e939bd7a1e753424.d: src/lib.rs

/root/repo/target/debug/deps/ppc-e939bd7a1e753424: src/lib.rs

src/lib.rs:
