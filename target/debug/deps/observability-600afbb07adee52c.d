/root/repo/target/debug/deps/observability-600afbb07adee52c.d: tests/observability.rs

/root/repo/target/debug/deps/observability-600afbb07adee52c: tests/observability.rs

tests/observability.rs:
