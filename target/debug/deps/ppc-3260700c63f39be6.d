/root/repo/target/debug/deps/ppc-3260700c63f39be6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libppc-3260700c63f39be6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
