/root/repo/target/debug/deps/ppc_faults-1ba8797400600403.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libppc_faults-1ba8797400600403.rmeta: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
