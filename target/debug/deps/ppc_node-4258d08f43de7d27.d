/root/repo/target/debug/deps/ppc_node-4258d08f43de7d27.d: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/debug/deps/libppc_node-4258d08f43de7d27.rlib: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/debug/deps/libppc_node-4258d08f43de7d27.rmeta: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

crates/node/src/lib.rs:
crates/node/src/budget.rs:
crates/node/src/calibration.rs:
crates/node/src/device.rs:
crates/node/src/error.rs:
crates/node/src/freq.rs:
crates/node/src/node.rs:
crates/node/src/procfs.rs:
crates/node/src/profile.rs:
crates/node/src/spec.rs:
crates/node/src/thermal.rs:
