/root/repo/target/debug/deps/policies-e12fb33d644c1605.d: tests/policies.rs Cargo.toml

/root/repo/target/debug/deps/libpolicies-e12fb33d644c1605.rmeta: tests/policies.rs Cargo.toml

tests/policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
