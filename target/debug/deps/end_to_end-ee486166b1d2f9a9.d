/root/repo/target/debug/deps/end_to_end-ee486166b1d2f9a9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ee486166b1d2f9a9: tests/end_to_end.rs

tests/end_to_end.rs:
