/root/repo/target/debug/deps/budget_baseline-7a0aeec70be10a7d.d: tests/budget_baseline.rs

/root/repo/target/debug/deps/budget_baseline-7a0aeec70be10a7d: tests/budget_baseline.rs

tests/budget_baseline.rs:
