/root/repo/target/debug/deps/ppc_telemetry-e764a2e360105bb9.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libppc_telemetry-e764a2e360105bb9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
