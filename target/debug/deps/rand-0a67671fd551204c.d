/root/repo/target/debug/deps/rand-0a67671fd551204c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-0a67671fd551204c: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
