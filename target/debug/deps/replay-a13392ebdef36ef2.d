/root/repo/target/debug/deps/replay-a13392ebdef36ef2.d: tests/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-a13392ebdef36ef2.rmeta: tests/replay.rs Cargo.toml

tests/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
