/root/repo/target/debug/deps/scratch_probe-9d3cc7aaad16ae88.d: tests/scratch_probe.rs

/root/repo/target/debug/deps/scratch_probe-9d3cc7aaad16ae88: tests/scratch_probe.rs

tests/scratch_probe.rs:
