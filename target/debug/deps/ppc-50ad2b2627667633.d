/root/repo/target/debug/deps/ppc-50ad2b2627667633.d: src/lib.rs

/root/repo/target/debug/deps/libppc-50ad2b2627667633.rlib: src/lib.rs

/root/repo/target/debug/deps/libppc-50ad2b2627667633.rmeta: src/lib.rs

src/lib.rs:
