/root/repo/target/debug/deps/ppc_faults-28b920ea43969882.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/libppc_faults-28b920ea43969882.rlib: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/debug/deps/libppc_faults-28b920ea43969882.rmeta: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
