/root/repo/target/debug/deps/ppc_cluster-0b1a54a88f36ef57.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/ppc_cluster-0b1a54a88f36ef57: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
