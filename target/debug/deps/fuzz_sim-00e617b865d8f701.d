/root/repo/target/debug/deps/fuzz_sim-00e617b865d8f701.d: tests/fuzz_sim.rs

/root/repo/target/debug/deps/fuzz_sim-00e617b865d8f701: tests/fuzz_sim.rs

tests/fuzz_sim.rs:
