/root/repo/target/debug/deps/policies-bb08b41eaccfa25f.d: tests/policies.rs

/root/repo/target/debug/deps/policies-bb08b41eaccfa25f: tests/policies.rs

tests/policies.rs:
