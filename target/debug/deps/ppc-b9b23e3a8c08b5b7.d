/root/repo/target/debug/deps/ppc-b9b23e3a8c08b5b7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libppc-b9b23e3a8c08b5b7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
