/root/repo/target/debug/deps/metrics_pipeline-1e37935fd3449d37.d: tests/metrics_pipeline.rs

/root/repo/target/debug/deps/metrics_pipeline-1e37935fd3449d37: tests/metrics_pipeline.rs

tests/metrics_pipeline.rs:
