/root/repo/target/debug/deps/sla-f60bf5bd4a3caff5.d: tests/sla.rs

/root/repo/target/debug/deps/sla-f60bf5bd4a3caff5: tests/sla.rs

tests/sla.rs:
