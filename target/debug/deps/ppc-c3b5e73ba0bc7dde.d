/root/repo/target/debug/deps/ppc-c3b5e73ba0bc7dde.d: src/main.rs

/root/repo/target/debug/deps/ppc-c3b5e73ba0bc7dde: src/main.rs

src/main.rs:
