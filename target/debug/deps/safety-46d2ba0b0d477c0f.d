/root/repo/target/debug/deps/safety-46d2ba0b0d477c0f.d: tests/safety.rs

/root/repo/target/debug/deps/safety-46d2ba0b0d477c0f: tests/safety.rs

tests/safety.rs:
