/root/repo/target/debug/deps/ppc_workload-42dab3a59c253454.d: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libppc_workload-42dab3a59c253454.rlib: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libppc_workload-42dab3a59c253454.rmeta: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/app.rs:
crates/workload/src/generator.rs:
crates/workload/src/job.rs:
crates/workload/src/model.rs:
crates/workload/src/phase.rs:
crates/workload/src/queue.rs:
crates/workload/src/replay.rs:
crates/workload/src/scaling.rs:
crates/workload/src/scheduler.rs:
crates/workload/src/trace.rs:
