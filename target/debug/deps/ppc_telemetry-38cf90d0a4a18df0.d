/root/repo/target/debug/deps/ppc_telemetry-38cf90d0a4a18df0.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/debug/deps/ppc_telemetry-38cf90d0a4a18df0: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
