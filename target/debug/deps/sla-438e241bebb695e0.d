/root/repo/target/debug/deps/sla-438e241bebb695e0.d: tests/sla.rs Cargo.toml

/root/repo/target/debug/deps/libsla-438e241bebb695e0.rmeta: tests/sla.rs Cargo.toml

tests/sla.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
