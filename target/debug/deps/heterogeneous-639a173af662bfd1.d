/root/repo/target/debug/deps/heterogeneous-639a173af662bfd1.d: tests/heterogeneous.rs

/root/repo/target/debug/deps/heterogeneous-639a173af662bfd1: tests/heterogeneous.rs

tests/heterogeneous.rs:
