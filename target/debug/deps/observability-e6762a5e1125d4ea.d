/root/repo/target/debug/deps/observability-e6762a5e1125d4ea.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-e6762a5e1125d4ea.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
