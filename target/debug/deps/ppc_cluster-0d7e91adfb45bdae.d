/root/repo/target/debug/deps/ppc_cluster-0d7e91adfb45bdae.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libppc_cluster-0d7e91adfb45bdae.rlib: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libppc_cluster-0d7e91adfb45bdae.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
