/root/repo/target/debug/deps/ppc_telemetry-0a5735507a083c70.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/debug/deps/libppc_telemetry-0a5735507a083c70.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/debug/deps/libppc_telemetry-0a5735507a083c70.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
