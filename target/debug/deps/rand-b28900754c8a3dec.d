/root/repo/target/debug/deps/rand-b28900754c8a3dec.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b28900754c8a3dec.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b28900754c8a3dec.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
