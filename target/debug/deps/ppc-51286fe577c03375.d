/root/repo/target/debug/deps/ppc-51286fe577c03375.d: src/lib.rs

/root/repo/target/debug/deps/ppc-51286fe577c03375: src/lib.rs

src/lib.rs:
