/root/repo/target/debug/deps/ppc_cluster-3ab910a4a7844dda.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libppc_cluster-3ab910a4a7844dda.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
