/root/repo/target/debug/deps/ppc-8cb36e41be6a805c.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libppc-8cb36e41be6a805c.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
