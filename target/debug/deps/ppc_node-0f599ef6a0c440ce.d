/root/repo/target/debug/deps/ppc_node-0f599ef6a0c440ce.d: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs Cargo.toml

/root/repo/target/debug/deps/libppc_node-0f599ef6a0c440ce.rmeta: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs Cargo.toml

crates/node/src/lib.rs:
crates/node/src/budget.rs:
crates/node/src/calibration.rs:
crates/node/src/device.rs:
crates/node/src/error.rs:
crates/node/src/freq.rs:
crates/node/src/node.rs:
crates/node/src/procfs.rs:
crates/node/src/profile.rs:
crates/node/src/spec.rs:
crates/node/src/thermal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
