/root/repo/target/debug/deps/determinism-9e59924c2b12160c.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-9e59924c2b12160c.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
