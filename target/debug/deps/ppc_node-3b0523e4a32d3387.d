/root/repo/target/debug/deps/ppc_node-3b0523e4a32d3387.d: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/debug/deps/ppc_node-3b0523e4a32d3387: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

crates/node/src/lib.rs:
crates/node/src/budget.rs:
crates/node/src/calibration.rs:
crates/node/src/device.rs:
crates/node/src/error.rs:
crates/node/src/freq.rs:
crates/node/src/node.rs:
crates/node/src/procfs.rs:
crates/node/src/profile.rs:
crates/node/src/spec.rs:
crates/node/src/thermal.rs:
