/root/repo/target/debug/deps/metrics_pipeline-b4ba5703b3ae6ceb.d: tests/metrics_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_pipeline-b4ba5703b3ae6ceb.rmeta: tests/metrics_pipeline.rs Cargo.toml

tests/metrics_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
