/root/repo/target/debug/examples/capacity_planning-5ee22aa4b5735b73.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-5ee22aa4b5735b73: examples/capacity_planning.rs

examples/capacity_planning.rs:
