/root/repo/target/debug/examples/threshold_tuning-90efbd0cf61323b8.d: examples/threshold_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libthreshold_tuning-90efbd0cf61323b8.rmeta: examples/threshold_tuning.rs Cargo.toml

examples/threshold_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
