/root/repo/target/debug/examples/failure_injection-65a6c4979d4f7c18.d: examples/failure_injection.rs

/root/repo/target/debug/examples/failure_injection-65a6c4979d4f7c18: examples/failure_injection.rs

examples/failure_injection.rs:
