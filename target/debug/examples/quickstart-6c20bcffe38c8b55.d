/root/repo/target/debug/examples/quickstart-6c20bcffe38c8b55.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6c20bcffe38c8b55: examples/quickstart.rs

examples/quickstart.rs:
