/root/repo/target/debug/examples/power_trace-a0aabfc1acdec226.d: examples/power_trace.rs Cargo.toml

/root/repo/target/debug/examples/libpower_trace-a0aabfc1acdec226.rmeta: examples/power_trace.rs Cargo.toml

examples/power_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
