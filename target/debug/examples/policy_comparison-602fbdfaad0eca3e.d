/root/repo/target/debug/examples/policy_comparison-602fbdfaad0eca3e.d: examples/policy_comparison.rs

/root/repo/target/debug/examples/policy_comparison-602fbdfaad0eca3e: examples/policy_comparison.rs

examples/policy_comparison.rs:
