/root/repo/target/debug/examples/heterogeneous-23d4c182d472c8c3.d: examples/heterogeneous.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous-23d4c182d472c8c3.rmeta: examples/heterogeneous.rs Cargo.toml

examples/heterogeneous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
