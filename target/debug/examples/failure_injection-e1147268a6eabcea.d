/root/repo/target/debug/examples/failure_injection-e1147268a6eabcea.d: examples/failure_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_injection-e1147268a6eabcea.rmeta: examples/failure_injection.rs Cargo.toml

examples/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
