/root/repo/target/debug/examples/sla_priorities-71c4a541bd2b568c.d: examples/sla_priorities.rs

/root/repo/target/debug/examples/sla_priorities-71c4a541bd2b568c: examples/sla_priorities.rs

examples/sla_priorities.rs:
