/root/repo/target/debug/examples/sla_priorities-6e77c0e115e0ea18.d: examples/sla_priorities.rs Cargo.toml

/root/repo/target/debug/examples/libsla_priorities-6e77c0e115e0ea18.rmeta: examples/sla_priorities.rs Cargo.toml

examples/sla_priorities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
