/root/repo/target/debug/examples/heterogeneous-bbf3f0398f6dc6a6.d: examples/heterogeneous.rs

/root/repo/target/debug/examples/heterogeneous-bbf3f0398f6dc6a6: examples/heterogeneous.rs

examples/heterogeneous.rs:
