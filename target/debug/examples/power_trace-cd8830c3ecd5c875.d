/root/repo/target/debug/examples/power_trace-cd8830c3ecd5c875.d: examples/power_trace.rs

/root/repo/target/debug/examples/power_trace-cd8830c3ecd5c875: examples/power_trace.rs

examples/power_trace.rs:
