/root/repo/target/debug/examples/threshold_tuning-6c9d4d602518efc2.d: examples/threshold_tuning.rs

/root/repo/target/debug/examples/threshold_tuning-6c9d4d602518efc2: examples/threshold_tuning.rs

examples/threshold_tuning.rs:
