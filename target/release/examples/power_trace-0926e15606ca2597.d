/root/repo/target/release/examples/power_trace-0926e15606ca2597.d: examples/power_trace.rs

/root/repo/target/release/examples/power_trace-0926e15606ca2597: examples/power_trace.rs

examples/power_trace.rs:
