/root/repo/target/release/examples/sla_priorities-800e712f66c6e3b4.d: examples/sla_priorities.rs

/root/repo/target/release/examples/sla_priorities-800e712f66c6e3b4: examples/sla_priorities.rs

examples/sla_priorities.rs:
