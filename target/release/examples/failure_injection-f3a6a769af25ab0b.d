/root/repo/target/release/examples/failure_injection-f3a6a769af25ab0b.d: examples/failure_injection.rs

/root/repo/target/release/examples/failure_injection-f3a6a769af25ab0b: examples/failure_injection.rs

examples/failure_injection.rs:
