/root/repo/target/release/examples/heterogeneous-eaa517e574c69f65.d: examples/heterogeneous.rs

/root/repo/target/release/examples/heterogeneous-eaa517e574c69f65: examples/heterogeneous.rs

examples/heterogeneous.rs:
