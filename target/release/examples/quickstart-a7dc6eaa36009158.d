/root/repo/target/release/examples/quickstart-a7dc6eaa36009158.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a7dc6eaa36009158: examples/quickstart.rs

examples/quickstart.rs:
