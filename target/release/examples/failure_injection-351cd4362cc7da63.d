/root/repo/target/release/examples/failure_injection-351cd4362cc7da63.d: examples/failure_injection.rs

/root/repo/target/release/examples/failure_injection-351cd4362cc7da63: examples/failure_injection.rs

examples/failure_injection.rs:
