/root/repo/target/release/examples/policy_comparison-c3f435a553aeee33.d: examples/policy_comparison.rs

/root/repo/target/release/examples/policy_comparison-c3f435a553aeee33: examples/policy_comparison.rs

examples/policy_comparison.rs:
