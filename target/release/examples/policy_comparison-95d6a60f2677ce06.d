/root/repo/target/release/examples/policy_comparison-95d6a60f2677ce06.d: examples/policy_comparison.rs

/root/repo/target/release/examples/policy_comparison-95d6a60f2677ce06: examples/policy_comparison.rs

examples/policy_comparison.rs:
