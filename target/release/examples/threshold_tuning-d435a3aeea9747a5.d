/root/repo/target/release/examples/threshold_tuning-d435a3aeea9747a5.d: examples/threshold_tuning.rs

/root/repo/target/release/examples/threshold_tuning-d435a3aeea9747a5: examples/threshold_tuning.rs

examples/threshold_tuning.rs:
