/root/repo/target/release/examples/sla_priorities-2f37d9e283dafbe5.d: examples/sla_priorities.rs

/root/repo/target/release/examples/sla_priorities-2f37d9e283dafbe5: examples/sla_priorities.rs

examples/sla_priorities.rs:
