/root/repo/target/release/examples/capacity_planning-130981e0500d86b8.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-130981e0500d86b8: examples/capacity_planning.rs

examples/capacity_planning.rs:
