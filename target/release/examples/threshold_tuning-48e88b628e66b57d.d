/root/repo/target/release/examples/threshold_tuning-48e88b628e66b57d.d: examples/threshold_tuning.rs

/root/repo/target/release/examples/threshold_tuning-48e88b628e66b57d: examples/threshold_tuning.rs

examples/threshold_tuning.rs:
