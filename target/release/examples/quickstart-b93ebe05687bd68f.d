/root/repo/target/release/examples/quickstart-b93ebe05687bd68f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b93ebe05687bd68f: examples/quickstart.rs

examples/quickstart.rs:
