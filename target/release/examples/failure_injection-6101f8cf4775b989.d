/root/repo/target/release/examples/failure_injection-6101f8cf4775b989.d: examples/failure_injection.rs

/root/repo/target/release/examples/failure_injection-6101f8cf4775b989: examples/failure_injection.rs

examples/failure_injection.rs:
