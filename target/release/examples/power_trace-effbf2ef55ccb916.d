/root/repo/target/release/examples/power_trace-effbf2ef55ccb916.d: examples/power_trace.rs

/root/repo/target/release/examples/power_trace-effbf2ef55ccb916: examples/power_trace.rs

examples/power_trace.rs:
