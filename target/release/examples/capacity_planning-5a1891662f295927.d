/root/repo/target/release/examples/capacity_planning-5a1891662f295927.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-5a1891662f295927: examples/capacity_planning.rs

examples/capacity_planning.rs:
