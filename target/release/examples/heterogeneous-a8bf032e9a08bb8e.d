/root/repo/target/release/examples/heterogeneous-a8bf032e9a08bb8e.d: examples/heterogeneous.rs

/root/repo/target/release/examples/heterogeneous-a8bf032e9a08bb8e: examples/heterogeneous.rs

examples/heterogeneous.rs:
