/root/repo/target/release/deps/ppc_cluster-4f0d1f7f05d038de.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-4f0d1f7f05d038de.rlib: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-4f0d1f7f05d038de.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
