/root/repo/target/release/deps/heterogeneous-f7ad991285958fa6.d: tests/heterogeneous.rs

/root/repo/target/release/deps/heterogeneous-f7ad991285958fa6: tests/heterogeneous.rs

tests/heterogeneous.rs:
