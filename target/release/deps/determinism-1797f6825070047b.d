/root/repo/target/release/deps/determinism-1797f6825070047b.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-1797f6825070047b: tests/determinism.rs

tests/determinism.rs:
