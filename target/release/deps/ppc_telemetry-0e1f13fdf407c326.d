/root/repo/target/release/deps/ppc_telemetry-0e1f13fdf407c326.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/release/deps/libppc_telemetry-0e1f13fdf407c326.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/release/deps/libppc_telemetry-0e1f13fdf407c326.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
