/root/repo/target/release/deps/fig6_candidate_sweep-d045dafdfc08dbce.d: crates/bench/src/bin/fig6_candidate_sweep.rs

/root/repo/target/release/deps/fig6_candidate_sweep-d045dafdfc08dbce: crates/bench/src/bin/fig6_candidate_sweep.rs

crates/bench/src/bin/fig6_candidate_sweep.rs:
