/root/repo/target/release/deps/end_to_end-8d68722028fdf0fa.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-8d68722028fdf0fa: tests/end_to_end.rs

tests/end_to_end.rs:
