/root/repo/target/release/deps/rand-1724b6a4df958eb8.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-1724b6a4df958eb8: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
