/root/repo/target/release/deps/headline_claims-a4cda646fbc36d05.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/release/deps/headline_claims-a4cda646fbc36d05: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
