/root/repo/target/release/deps/ext_budget_baseline-f8ec6572bb3ab699.d: crates/bench/src/bin/ext_budget_baseline.rs

/root/repo/target/release/deps/ext_budget_baseline-f8ec6572bb3ab699: crates/bench/src/bin/ext_budget_baseline.rs

crates/bench/src/bin/ext_budget_baseline.rs:
