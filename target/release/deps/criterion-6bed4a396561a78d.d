/root/repo/target/release/deps/criterion-6bed4a396561a78d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6bed4a396561a78d.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6bed4a396561a78d.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
