/root/repo/target/release/deps/ext_thermal-a06679a9102bfbd4.d: crates/bench/src/bin/ext_thermal.rs

/root/repo/target/release/deps/ext_thermal-a06679a9102bfbd4: crates/bench/src/bin/ext_thermal.rs

crates/bench/src/bin/ext_thermal.rs:
