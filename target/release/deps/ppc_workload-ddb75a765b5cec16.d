/root/repo/target/release/deps/ppc_workload-ddb75a765b5cec16.d: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/ppc_workload-ddb75a765b5cec16: crates/workload/src/lib.rs crates/workload/src/app.rs crates/workload/src/generator.rs crates/workload/src/job.rs crates/workload/src/model.rs crates/workload/src/phase.rs crates/workload/src/queue.rs crates/workload/src/replay.rs crates/workload/src/scaling.rs crates/workload/src/scheduler.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/app.rs:
crates/workload/src/generator.rs:
crates/workload/src/job.rs:
crates/workload/src/model.rs:
crates/workload/src/phase.rs:
crates/workload/src/queue.rs:
crates/workload/src/replay.rs:
crates/workload/src/scaling.rs:
crates/workload/src/scheduler.rs:
crates/workload/src/trace.rs:
