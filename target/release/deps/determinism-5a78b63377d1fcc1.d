/root/repo/target/release/deps/determinism-5a78b63377d1fcc1.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-5a78b63377d1fcc1: tests/determinism.rs

tests/determinism.rs:
