/root/repo/target/release/deps/ext_faults-9ba5dfc325a3f687.d: crates/bench/src/bin/ext_faults.rs

/root/repo/target/release/deps/ext_faults-9ba5dfc325a3f687: crates/bench/src/bin/ext_faults.rs

crates/bench/src/bin/ext_faults.rs:
