/root/repo/target/release/deps/ppc-16a36a367e76eaef.d: src/lib.rs

/root/repo/target/release/deps/ppc-16a36a367e76eaef: src/lib.rs

src/lib.rs:
