/root/repo/target/release/deps/ppc_metrics-2ca7eecd04bf652b.d: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libppc_metrics-2ca7eecd04bf652b.rlib: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libppc_metrics-2ca7eecd04bf652b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/availability.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/availability.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
