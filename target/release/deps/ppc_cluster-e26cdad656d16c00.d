/root/repo/target/release/deps/ppc_cluster-e26cdad656d16c00.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-e26cdad656d16c00.rlib: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-e26cdad656d16c00.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
