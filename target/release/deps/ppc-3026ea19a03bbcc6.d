/root/repo/target/release/deps/ppc-3026ea19a03bbcc6.d: src/lib.rs

/root/repo/target/release/deps/ppc-3026ea19a03bbcc6: src/lib.rs

src/lib.rs:
