/root/repo/target/release/deps/ppc_node-61c91c0f418313d6.d: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/release/deps/ppc_node-61c91c0f418313d6: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

crates/node/src/lib.rs:
crates/node/src/budget.rs:
crates/node/src/calibration.rs:
crates/node/src/device.rs:
crates/node/src/error.rs:
crates/node/src/freq.rs:
crates/node/src/node.rs:
crates/node/src/procfs.rs:
crates/node/src/profile.rs:
crates/node/src/spec.rs:
crates/node/src/thermal.rs:
