/root/repo/target/release/deps/observability-f16df63c6793b7a1.d: tests/observability.rs

/root/repo/target/release/deps/observability-f16df63c6793b7a1: tests/observability.rs

tests/observability.rs:
