/root/repo/target/release/deps/ppc_bench-9ddf0bf3379c4c71.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppc_bench-9ddf0bf3379c4c71.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppc_bench-9ddf0bf3379c4c71.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
