/root/repo/target/release/deps/ppc_metrics-e6519990a5ca5d0c.d: crates/metrics/src/lib.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/ppc_metrics-e6519990a5ca5d0c: crates/metrics/src/lib.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
