/root/repo/target/release/deps/ablation_sweeps-e2b5e941dbe1db71.d: crates/bench/src/bin/ablation_sweeps.rs

/root/repo/target/release/deps/ablation_sweeps-e2b5e941dbe1db71: crates/bench/src/bin/ablation_sweeps.rs

crates/bench/src/bin/ablation_sweeps.rs:
