/root/repo/target/release/deps/metrics_pipeline-985380c8d274fd48.d: tests/metrics_pipeline.rs

/root/repo/target/release/deps/metrics_pipeline-985380c8d274fd48: tests/metrics_pipeline.rs

tests/metrics_pipeline.rs:
