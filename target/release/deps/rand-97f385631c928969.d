/root/repo/target/release/deps/rand-97f385631c928969.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-97f385631c928969.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-97f385631c928969.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
