/root/repo/target/release/deps/safety-773ff4f2a8713d49.d: tests/safety.rs

/root/repo/target/release/deps/safety-773ff4f2a8713d49: tests/safety.rs

tests/safety.rs:
