/root/repo/target/release/deps/ablation_sweeps-d21bc775b52cf9f0.d: crates/bench/src/bin/ablation_sweeps.rs

/root/repo/target/release/deps/ablation_sweeps-d21bc775b52cf9f0: crates/bench/src/bin/ablation_sweeps.rs

crates/bench/src/bin/ablation_sweeps.rs:
