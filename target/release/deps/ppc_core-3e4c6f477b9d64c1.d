/root/repo/target/release/deps/ppc_core-3e4c6f477b9d64c1.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/capping.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/manager.rs crates/core/src/observe.rs crates/core/src/policy/mod.rs crates/core/src/policy/bfp.rs crates/core/src/policy/hri.rs crates/core/src/policy/hri_c.rs crates/core/src/policy/lpc.rs crates/core/src/policy/lpc_c.rs crates/core/src/policy/mpc.rs crates/core/src/policy/mpc_c.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/uniform.rs crates/core/src/sets.rs crates/core/src/state.rs crates/core/src/thresholds.rs

/root/repo/target/release/deps/libppc_core-3e4c6f477b9d64c1.rlib: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/capping.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/manager.rs crates/core/src/observe.rs crates/core/src/policy/mod.rs crates/core/src/policy/bfp.rs crates/core/src/policy/hri.rs crates/core/src/policy/hri_c.rs crates/core/src/policy/lpc.rs crates/core/src/policy/lpc_c.rs crates/core/src/policy/mpc.rs crates/core/src/policy/mpc_c.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/uniform.rs crates/core/src/sets.rs crates/core/src/state.rs crates/core/src/thresholds.rs

/root/repo/target/release/deps/libppc_core-3e4c6f477b9d64c1.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/capping.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/manager.rs crates/core/src/observe.rs crates/core/src/policy/mod.rs crates/core/src/policy/bfp.rs crates/core/src/policy/hri.rs crates/core/src/policy/hri_c.rs crates/core/src/policy/lpc.rs crates/core/src/policy/lpc_c.rs crates/core/src/policy/mpc.rs crates/core/src/policy/mpc_c.rs crates/core/src/policy/round_robin.rs crates/core/src/policy/uniform.rs crates/core/src/sets.rs crates/core/src/state.rs crates/core/src/thresholds.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/capping.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/manager.rs:
crates/core/src/observe.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/bfp.rs:
crates/core/src/policy/hri.rs:
crates/core/src/policy/hri_c.rs:
crates/core/src/policy/lpc.rs:
crates/core/src/policy/lpc_c.rs:
crates/core/src/policy/mpc.rs:
crates/core/src/policy/mpc_c.rs:
crates/core/src/policy/round_robin.rs:
crates/core/src/policy/uniform.rs:
crates/core/src/sets.rs:
crates/core/src/state.rs:
crates/core/src/thresholds.rs:
