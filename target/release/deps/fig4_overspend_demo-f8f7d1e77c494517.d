/root/repo/target/release/deps/fig4_overspend_demo-f8f7d1e77c494517.d: crates/bench/src/bin/fig4_overspend_demo.rs

/root/repo/target/release/deps/fig4_overspend_demo-f8f7d1e77c494517: crates/bench/src/bin/fig4_overspend_demo.rs

crates/bench/src/bin/fig4_overspend_demo.rs:
