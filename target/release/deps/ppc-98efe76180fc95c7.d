/root/repo/target/release/deps/ppc-98efe76180fc95c7.d: src/main.rs

/root/repo/target/release/deps/ppc-98efe76180fc95c7: src/main.rs

src/main.rs:
