/root/repo/target/release/deps/budget_baseline-0eaa190f44c11a99.d: tests/budget_baseline.rs

/root/repo/target/release/deps/budget_baseline-0eaa190f44c11a99: tests/budget_baseline.rs

tests/budget_baseline.rs:
