/root/repo/target/release/deps/safety-4c214658ec5d07cc.d: tests/safety.rs

/root/repo/target/release/deps/safety-4c214658ec5d07cc: tests/safety.rs

tests/safety.rs:
