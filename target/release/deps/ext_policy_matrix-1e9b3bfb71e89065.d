/root/repo/target/release/deps/ext_policy_matrix-1e9b3bfb71e89065.d: crates/bench/src/bin/ext_policy_matrix.rs

/root/repo/target/release/deps/ext_policy_matrix-1e9b3bfb71e89065: crates/bench/src/bin/ext_policy_matrix.rs

crates/bench/src/bin/ext_policy_matrix.rs:
