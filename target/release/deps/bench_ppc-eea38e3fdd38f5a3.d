/root/repo/target/release/deps/bench_ppc-eea38e3fdd38f5a3.d: crates/bench/src/bin/bench_ppc.rs

/root/repo/target/release/deps/bench_ppc-eea38e3fdd38f5a3: crates/bench/src/bin/bench_ppc.rs

crates/bench/src/bin/bench_ppc.rs:
