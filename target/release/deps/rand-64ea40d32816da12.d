/root/repo/target/release/deps/rand-64ea40d32816da12.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-64ea40d32816da12.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-64ea40d32816da12.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
