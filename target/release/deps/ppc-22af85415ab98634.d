/root/repo/target/release/deps/ppc-22af85415ab98634.d: src/lib.rs

/root/repo/target/release/deps/libppc-22af85415ab98634.rlib: src/lib.rs

/root/repo/target/release/deps/libppc-22af85415ab98634.rmeta: src/lib.rs

src/lib.rs:
