/root/repo/target/release/deps/fig4_overspend_demo-a26343f969ad1ff1.d: crates/bench/src/bin/fig4_overspend_demo.rs

/root/repo/target/release/deps/fig4_overspend_demo-a26343f969ad1ff1: crates/bench/src/bin/fig4_overspend_demo.rs

crates/bench/src/bin/fig4_overspend_demo.rs:
