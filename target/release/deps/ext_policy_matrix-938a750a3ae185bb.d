/root/repo/target/release/deps/ext_policy_matrix-938a750a3ae185bb.d: crates/bench/src/bin/ext_policy_matrix.rs

/root/repo/target/release/deps/ext_policy_matrix-938a750a3ae185bb: crates/bench/src/bin/ext_policy_matrix.rs

crates/bench/src/bin/ext_policy_matrix.rs:
