/root/repo/target/release/deps/fig7_policy_comparison-85369821cc560fbb.d: crates/bench/src/bin/fig7_policy_comparison.rs

/root/repo/target/release/deps/fig7_policy_comparison-85369821cc560fbb: crates/bench/src/bin/fig7_policy_comparison.rs

crates/bench/src/bin/fig7_policy_comparison.rs:
