/root/repo/target/release/deps/fig5_scalability-5b69a86e9db571f7.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/release/deps/fig5_scalability-5b69a86e9db571f7: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
