/root/repo/target/release/deps/ext_breakdown-64988d53f77d0467.d: crates/bench/src/bin/ext_breakdown.rs

/root/repo/target/release/deps/ext_breakdown-64988d53f77d0467: crates/bench/src/bin/ext_breakdown.rs

crates/bench/src/bin/ext_breakdown.rs:
