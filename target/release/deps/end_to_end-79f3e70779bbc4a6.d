/root/repo/target/release/deps/end_to_end-79f3e70779bbc4a6.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-79f3e70779bbc4a6: tests/end_to_end.rs

tests/end_to_end.rs:
