/root/repo/target/release/deps/replay-7159f8b04b089aa9.d: tests/replay.rs

/root/repo/target/release/deps/replay-7159f8b04b089aa9: tests/replay.rs

tests/replay.rs:
