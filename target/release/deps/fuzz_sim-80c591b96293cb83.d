/root/repo/target/release/deps/fuzz_sim-80c591b96293cb83.d: tests/fuzz_sim.rs

/root/repo/target/release/deps/fuzz_sim-80c591b96293cb83: tests/fuzz_sim.rs

tests/fuzz_sim.rs:
