/root/repo/target/release/deps/ppc_node-0723da6059424df5.d: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/release/deps/libppc_node-0723da6059424df5.rlib: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

/root/repo/target/release/deps/libppc_node-0723da6059424df5.rmeta: crates/node/src/lib.rs crates/node/src/budget.rs crates/node/src/calibration.rs crates/node/src/device.rs crates/node/src/error.rs crates/node/src/freq.rs crates/node/src/node.rs crates/node/src/procfs.rs crates/node/src/profile.rs crates/node/src/spec.rs crates/node/src/thermal.rs

crates/node/src/lib.rs:
crates/node/src/budget.rs:
crates/node/src/calibration.rs:
crates/node/src/device.rs:
crates/node/src/error.rs:
crates/node/src/freq.rs:
crates/node/src/node.rs:
crates/node/src/procfs.rs:
crates/node/src/profile.rs:
crates/node/src/spec.rs:
crates/node/src/thermal.rs:
