/root/repo/target/release/deps/ppc_cluster-6eef9467e2b765eb.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-6eef9467e2b765eb.rlib: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libppc_cluster-6eef9467e2b765eb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
