/root/repo/target/release/deps/ppc_faults-1b3a91fba6e105d1.d: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/release/deps/libppc_faults-1b3a91fba6e105d1.rlib: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

/root/repo/target/release/deps/libppc_faults-1b3a91fba6e105d1.rmeta: crates/faults/src/lib.rs crates/faults/src/engine.rs crates/faults/src/schedule.rs

crates/faults/src/lib.rs:
crates/faults/src/engine.rs:
crates/faults/src/schedule.rs:
