/root/repo/target/release/deps/fig5_scalability-16f186fa63d0ecf4.d: crates/bench/src/bin/fig5_scalability.rs

/root/repo/target/release/deps/fig5_scalability-16f186fa63d0ecf4: crates/bench/src/bin/fig5_scalability.rs

crates/bench/src/bin/fig5_scalability.rs:
