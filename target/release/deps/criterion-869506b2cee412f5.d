/root/repo/target/release/deps/criterion-869506b2cee412f5.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-869506b2cee412f5: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
