/root/repo/target/release/deps/fig7_policy_comparison-10e7dec8681cb6a9.d: crates/bench/src/bin/fig7_policy_comparison.rs

/root/repo/target/release/deps/fig7_policy_comparison-10e7dec8681cb6a9: crates/bench/src/bin/fig7_policy_comparison.rs

crates/bench/src/bin/fig7_policy_comparison.rs:
