/root/repo/target/release/deps/ppc-23b7bf2de1d91f86.d: src/main.rs

/root/repo/target/release/deps/ppc-23b7bf2de1d91f86: src/main.rs

src/main.rs:
