/root/repo/target/release/deps/ext_replications-b70b3281034188d5.d: crates/bench/src/bin/ext_replications.rs

/root/repo/target/release/deps/ext_replications-b70b3281034188d5: crates/bench/src/bin/ext_replications.rs

crates/bench/src/bin/ext_replications.rs:
