/root/repo/target/release/deps/sla-e329e285d9a20412.d: tests/sla.rs

/root/repo/target/release/deps/sla-e329e285d9a20412: tests/sla.rs

tests/sla.rs:
