/root/repo/target/release/deps/fuzz_sim-8bee47b5d2e932b1.d: tests/fuzz_sim.rs

/root/repo/target/release/deps/fuzz_sim-8bee47b5d2e932b1: tests/fuzz_sim.rs

tests/fuzz_sim.rs:
