/root/repo/target/release/deps/replay-f58300acc286347f.d: tests/replay.rs

/root/repo/target/release/deps/replay-f58300acc286347f: tests/replay.rs

tests/replay.rs:
