/root/repo/target/release/deps/ppc_bench-a3b2bd068c531ef2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ppc_bench-a3b2bd068c531ef2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
