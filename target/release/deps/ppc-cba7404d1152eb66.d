/root/repo/target/release/deps/ppc-cba7404d1152eb66.d: src/main.rs

/root/repo/target/release/deps/ppc-cba7404d1152eb66: src/main.rs

src/main.rs:
