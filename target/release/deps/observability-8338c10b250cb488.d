/root/repo/target/release/deps/observability-8338c10b250cb488.d: tests/observability.rs

/root/repo/target/release/deps/observability-8338c10b250cb488: tests/observability.rs

tests/observability.rs:
