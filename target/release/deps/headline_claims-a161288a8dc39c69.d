/root/repo/target/release/deps/headline_claims-a161288a8dc39c69.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/release/deps/headline_claims-a161288a8dc39c69: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
