/root/repo/target/release/deps/policies-17a9d77c868caaed.d: tests/policies.rs

/root/repo/target/release/deps/policies-17a9d77c868caaed: tests/policies.rs

tests/policies.rs:
