/root/repo/target/release/deps/ppc_bench-693ffefa79c81812.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppc_bench-693ffefa79c81812.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libppc_bench-693ffefa79c81812.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
