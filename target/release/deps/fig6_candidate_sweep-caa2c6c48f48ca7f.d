/root/repo/target/release/deps/fig6_candidate_sweep-caa2c6c48f48ca7f.d: crates/bench/src/bin/fig6_candidate_sweep.rs

/root/repo/target/release/deps/fig6_candidate_sweep-caa2c6c48f48ca7f: crates/bench/src/bin/fig6_candidate_sweep.rs

crates/bench/src/bin/fig6_candidate_sweep.rs:
