/root/repo/target/release/deps/heterogeneous-9d32ef366744a63d.d: tests/heterogeneous.rs

/root/repo/target/release/deps/heterogeneous-9d32ef366744a63d: tests/heterogeneous.rs

tests/heterogeneous.rs:
