/root/repo/target/release/deps/ppc-14e419bb7811e1f2.d: src/lib.rs

/root/repo/target/release/deps/libppc-14e419bb7811e1f2.rlib: src/lib.rs

/root/repo/target/release/deps/libppc-14e419bb7811e1f2.rmeta: src/lib.rs

src/lib.rs:
