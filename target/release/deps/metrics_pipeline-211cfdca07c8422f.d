/root/repo/target/release/deps/metrics_pipeline-211cfdca07c8422f.d: tests/metrics_pipeline.rs

/root/repo/target/release/deps/metrics_pipeline-211cfdca07c8422f: tests/metrics_pipeline.rs

tests/metrics_pipeline.rs:
