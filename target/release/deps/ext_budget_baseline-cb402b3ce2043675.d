/root/repo/target/release/deps/ext_budget_baseline-cb402b3ce2043675.d: crates/bench/src/bin/ext_budget_baseline.rs

/root/repo/target/release/deps/ext_budget_baseline-cb402b3ce2043675: crates/bench/src/bin/ext_budget_baseline.rs

crates/bench/src/bin/ext_budget_baseline.rs:
