/root/repo/target/release/deps/budget_baseline-a3566943d6bca1b6.d: tests/budget_baseline.rs

/root/repo/target/release/deps/budget_baseline-a3566943d6bca1b6: tests/budget_baseline.rs

tests/budget_baseline.rs:
