/root/repo/target/release/deps/ext_breakdown-580dda2cba6a4fe9.d: crates/bench/src/bin/ext_breakdown.rs

/root/repo/target/release/deps/ext_breakdown-580dda2cba6a4fe9: crates/bench/src/bin/ext_breakdown.rs

crates/bench/src/bin/ext_breakdown.rs:
