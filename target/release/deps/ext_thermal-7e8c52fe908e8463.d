/root/repo/target/release/deps/ext_thermal-7e8c52fe908e8463.d: crates/bench/src/bin/ext_thermal.rs

/root/repo/target/release/deps/ext_thermal-7e8c52fe908e8463: crates/bench/src/bin/ext_thermal.rs

crates/bench/src/bin/ext_thermal.rs:
