/root/repo/target/release/deps/sla-b799ca9da331d0d8.d: tests/sla.rs

/root/repo/target/release/deps/sla-b799ca9da331d0d8: tests/sla.rs

tests/sla.rs:
