/root/repo/target/release/deps/proptest-073f39b3314024b7.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-073f39b3314024b7: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
