/root/repo/target/release/deps/ppc_simkit-86da65c4b5527c20.d: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libppc_simkit-86da65c4b5527c20.rlib: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libppc_simkit-86da65c4b5527c20.rmeta: crates/simkit/src/lib.rs crates/simkit/src/clock.rs crates/simkit/src/engine.rs crates/simkit/src/error.rs crates/simkit/src/journal.rs crates/simkit/src/par.rs crates/simkit/src/queue.rs crates/simkit/src/rng.rs crates/simkit/src/series.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/clock.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/error.rs:
crates/simkit/src/journal.rs:
crates/simkit/src/par.rs:
crates/simkit/src/queue.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/series.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
