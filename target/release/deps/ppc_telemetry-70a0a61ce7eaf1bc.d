/root/repo/target/release/deps/ppc_telemetry-70a0a61ce7eaf1bc.d: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/release/deps/libppc_telemetry-70a0a61ce7eaf1bc.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

/root/repo/target/release/deps/libppc_telemetry-70a0a61ce7eaf1bc.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/agent.rs crates/telemetry/src/collector.rs crates/telemetry/src/cost.rs crates/telemetry/src/history.rs crates/telemetry/src/meter.rs crates/telemetry/src/noise.rs crates/telemetry/src/sample.rs crates/telemetry/src/tree.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/agent.rs:
crates/telemetry/src/collector.rs:
crates/telemetry/src/cost.rs:
crates/telemetry/src/history.rs:
crates/telemetry/src/meter.rs:
crates/telemetry/src/noise.rs:
crates/telemetry/src/sample.rs:
crates/telemetry/src/tree.rs:
