/root/repo/target/release/deps/ext_replications-f89e95ac541c3004.d: crates/bench/src/bin/ext_replications.rs

/root/repo/target/release/deps/ext_replications-f89e95ac541c3004: crates/bench/src/bin/ext_replications.rs

crates/bench/src/bin/ext_replications.rs:
