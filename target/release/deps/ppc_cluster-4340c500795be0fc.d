/root/repo/target/release/deps/ppc_cluster-4340c500795be0fc.d: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/ppc_cluster-4340c500795be0fc: crates/cluster/src/lib.rs crates/cluster/src/experiment.rs crates/cluster/src/output.rs crates/cluster/src/sim.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/experiment.rs:
crates/cluster/src/output.rs:
crates/cluster/src/sim.rs:
crates/cluster/src/spec.rs:
