/root/repo/target/release/deps/ppc_metrics-5ae48880e60426fa.d: crates/metrics/src/lib.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libppc_metrics-5ae48880e60426fa.rlib: crates/metrics/src/lib.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libppc_metrics-5ae48880e60426fa.rmeta: crates/metrics/src/lib.rs crates/metrics/src/bootstrap.rs crates/metrics/src/cplj.rs crates/metrics/src/energy.rs crates/metrics/src/overspend.rs crates/metrics/src/peak.rs crates/metrics/src/performance.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/bootstrap.rs:
crates/metrics/src/cplj.rs:
crates/metrics/src/energy.rs:
crates/metrics/src/overspend.rs:
crates/metrics/src/peak.rs:
crates/metrics/src/performance.rs:
crates/metrics/src/report.rs:
