/root/repo/target/release/deps/policies-c7a5017b93998d73.d: tests/policies.rs

/root/repo/target/release/deps/policies-c7a5017b93998d73: tests/policies.rs

tests/policies.rs:
