/root/repo/target/release/deps/bench_ppc-a4ab4d58a6e96454.d: crates/bench/src/bin/bench_ppc.rs

/root/repo/target/release/deps/bench_ppc-a4ab4d58a6e96454: crates/bench/src/bin/bench_ppc.rs

crates/bench/src/bin/bench_ppc.rs:
