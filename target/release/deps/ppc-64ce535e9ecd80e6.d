/root/repo/target/release/deps/ppc-64ce535e9ecd80e6.d: src/lib.rs

/root/repo/target/release/deps/libppc-64ce535e9ecd80e6.rlib: src/lib.rs

/root/repo/target/release/deps/libppc-64ce535e9ecd80e6.rmeta: src/lib.rs

src/lib.rs:
