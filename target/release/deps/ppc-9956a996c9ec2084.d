/root/repo/target/release/deps/ppc-9956a996c9ec2084.d: src/main.rs

/root/repo/target/release/deps/ppc-9956a996c9ec2084: src/main.rs

src/main.rs:
