/root/repo/target/release/deps/ppc-83f1c85c68aa14af.d: src/main.rs

/root/repo/target/release/deps/ppc-83f1c85c68aa14af: src/main.rs

src/main.rs:
