//! # ppc — power provision and capping for large scale systems
//!
//! Facade crate re-exporting the full public API of the reproduction of
//! *"A Power Provision and Capping Architecture for Large Scale Systems"*
//! (Liu, Zhu, Lu, Liu — IPDPS Workshops 2012). See the individual crates
//! for the substrate layers; the typical entry point is
//! [`cluster::experiment::run_experiment`] or the lower-level
//! [`cluster::ClusterSim`].
//!
//! ```
//! use ppc::cluster::{ClusterSim, ClusterSpec};
//! use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
//! use ppc::simkit::SimDuration;
//!
//! // A 4-node cluster capped with the paper's MPC policy.
//! let spec = ClusterSpec::mini(4);
//! let sets = NodeSets::new(spec.node_ids(), []);
//! let config = ManagerConfig {
//!     training_cycles: 60,
//!     ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
//! };
//! let manager = PowerManager::new(config, sets).expect("valid config");
//! let mut sim = ClusterSim::new(spec).with_manager(manager);
//! sim.run_for(SimDuration::from_mins(3));
//!
//! assert!(sim.true_power().max().unwrap() > 0.0);
//! let t = sim.manager().unwrap().thresholds();
//! assert!(t.p_low_w() <= t.p_high_w());
//! ```

pub use ppc_cluster as cluster;
pub use ppc_core as core;
pub use ppc_faults as faults;
pub use ppc_metrics as metrics;
pub use ppc_node as node;
pub use ppc_obs as obs;
pub use ppc_simkit as simkit;
pub use ppc_telemetry as telemetry;
pub use ppc_whatif as whatif;
pub use ppc_workload as workload;
