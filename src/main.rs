//! `ppc` — command-line front end for the power provision & capping
//! architecture.
//!
//! ```text
//! ppc run [--policy MPC] [--nodes 16] [--paper] [--cap N] [--provision F]
//!         [--training-mins M] [--measure-mins M] [--seed S] [--backfill]
//!         [--critical-frac F] [--trace-out FILE] [--metrics-out FILE]
//!         [--health-out FILE] [--json]
//! ppc sweep [--policy MPC] [--sizes 0,8,16,...] [--paper]
//! ppc policies
//! ```
//!
//! `run` executes one training+measurement experiment and prints the
//! metric suite; `sweep` reproduces the Figure-6 candidate-set sweep;
//! `policies` lists the implemented target-set selection policies.

use ppc::cluster::experiment::{run_experiment, run_experiment_full, ExperimentConfig};
use ppc::cluster::output::{outcome_to_json, render_table};
use ppc::cluster::ClusterSpec;
use ppc::core::PolicyKind;
use ppc::simkit::SimDuration;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  ppc run [--policy MPC|MPC-C|LPC|LPC-C|BFP|HRI|HRI-C|none] [--nodes N]\n          [--paper] [--cap N] [--provision FRAC] [--training-mins M]\n          [--measure-mins M] [--seed S] [--backfill] [--critical-frac F]\n          [--trace FILE] [--faults RATE] [--trace-out FILE]\n          [--metrics-out FILE] [--health-out FILE] [--json]\n  ppc sweep [--policy MPC] [--sizes 0,8,16,32,48,64,96,128] [--paper]\n  ppc policies\n\n  --trace-out writes the control-cycle span tree: Chrome trace_event\n  JSON (load in Perfetto / chrome://tracing), or a JSONL event stream\n  if FILE ends in .jsonl. --metrics-out writes a Prometheus-style text\n  dump of the deterministic instruments plus self-profile comments.\n  --health-out writes the fleet health JSONL stream (per-zone rollups\n  and the SLO alert journal; validated in CI by validate_health)."
    );
    exit(2)
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i].clone();
            if !key.starts_with("--") {
                eprintln!("unexpected argument {key:?}");
                usage();
            }
            let value = if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                i += 1;
                Some(raw[i].clone())
            } else {
                None
            };
            pairs.push((key, value));
            i += 1;
        }
        Args { pairs }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {key}: {v:?}");
                usage()
            })
        })
    }
}

fn build_config(args: &Args) -> ExperimentConfig {
    let policy = match args.get("--policy") {
        None => Some(PolicyKind::Mpc),
        Some("none") | Some("uncapped") => None,
        Some(p) => Some(p.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        })),
    };
    let mut cfg = if args.flag("--paper") {
        ExperimentConfig::paper(policy)
    } else {
        let nodes: u32 = args.parsed("--nodes").unwrap_or(16);
        ExperimentConfig::quick(policy, nodes)
    };
    if let Some(cap) = args.parsed::<usize>("--cap") {
        cfg.candidate_cap = Some(cap);
    }
    if let Some(f) = args.parsed::<f64>("--provision") {
        cfg.spec.provision_fraction = f;
    }
    if let Some(m) = args.parsed::<u64>("--training-mins") {
        cfg.training = SimDuration::from_mins(m);
    }
    if let Some(m) = args.parsed::<u64>("--measure-mins") {
        cfg.measurement = SimDuration::from_mins(m);
    }
    if let Some(s) = args.parsed::<u64>("--seed") {
        cfg.spec.seed = s;
    }
    if args.flag("--backfill") {
        cfg.spec.backfill = true;
    }
    if let Some(f) = args.parsed::<f64>("--critical-frac") {
        cfg.spec.critical_job_fraction = f;
    }
    if let Some(path) = args.get("--trace") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read trace {path:?}: {e}");
            exit(2)
        });
        let entries = ppc::workload::parse_trace(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2)
        });
        cfg.spec.job_trace = Some(entries);
    }
    if let Some(rate) = args.parsed::<f64>("--faults") {
        // One knob drives a mixed schedule: crashes and hangs at `rate`
        // per node-hour, silences slightly more often (they are the
        // cheapest fault), over the whole training+measurement window.
        let rates = ppc::faults::FaultRates {
            crash_per_node_hour: rate,
            reboot_mean_secs: 45.0,
            hang_per_node_hour: rate,
            silence_per_node_hour: rate * 1.5,
            ..ppc::faults::FaultRates::default()
        };
        let horizon = cfg.training + cfg.measurement;
        let schedule = ppc::faults::FaultSchedule::generate(
            &rates,
            cfg.spec.total_nodes(),
            horizon,
            &ppc::simkit::RngFactory::new(cfg.spec.seed),
        );
        cfg.faults = Some(ppc::faults::FaultInjection::new(schedule));
    }
    cfg
}

/// Writes `text` to `path`, exiting with a message on failure.
fn write_or_die(path: &str, text: &str, what: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("cannot write {what} {path:?}: {e}");
        exit(1);
    }
    eprintln!("{what} written to {path}");
}

fn cmd_run(args: &Args) {
    let cfg = build_config(args);
    let (out, sim) = run_experiment_full(&cfg);
    if let Some(path) = args.get("--trace-out") {
        let obs = sim.obs();
        let text = if path.ends_with(".jsonl") {
            ppc::obs::jsonl(&obs.spans, &obs.metrics)
        } else {
            ppc::obs::chrome_trace(&obs.spans)
        };
        write_or_die(path, &text, "trace");
    }
    if let Some(path) = args.get("--metrics-out") {
        let obs = sim.obs();
        let mut text = ppc::obs::prometheus(&obs.metrics);
        // Wall-clock self-profile rides along as comments: scrapers skip
        // them, and the deterministic instrument block above stays a pure
        // function of the seed.
        for cost in obs.profile.report() {
            text.push_str(&format!(
                "# self-profile {} mean_secs {:.9} count {}\n",
                cost.stage, cost.mean_secs, cost.count
            ));
        }
        write_or_die(path, &text, "metrics");
    }
    if let Some(path) = args.get("--health-out") {
        let text = ppc::obs::health_jsonl(sim.health());
        write_or_die(path, &text, "health");
    }
    if args.flag("--json") {
        println!("{}", outcome_to_json(&out));
        return;
    }
    let m = &out.metrics;
    let rows = vec![
        vec!["policy".into(), out.label.clone()],
        vec!["candidate count".into(), out.candidate_count.to_string()],
        vec!["jobs finished".into(), m.jobs_finished.to_string()],
        vec!["Performance(cap)".into(), format!("{:.4}", m.performance)],
        vec![
            "CPLJ".into(),
            format!("{} ({:.1}%)", m.cplj, m.cplj_fraction * 100.0),
        ],
        vec!["P_max".into(), format!("{:.2} kW", m.p_max_w / 1e3)],
        vec!["P_mean".into(), format!("{:.2} kW", m.p_mean_w / 1e3)],
        vec!["ΔP×T".into(), format!("{:.5}", m.overspend)],
        vec![
            "provision P_Max".into(),
            format!("{:.2} kW", out.provision_w / 1e3),
        ],
        vec![
            "thresholds (P_L, P_H)".into(),
            format!(
                "{:.2} kW, {:.2} kW",
                out.thresholds_w.0 / 1e3,
                out.thresholds_w.1 / 1e3
            ),
        ],
        vec!["red cycles".into(), out.red_cycles_measured.to_string()],
        vec![
            "mgmt cost/cycle".into(),
            format!("{:.1} µs", out.mgmt_cost_secs * 1e6),
        ],
        vec!["journal dropped".into(), out.journal_dropped.to_string()],
        vec![
            "span fingerprint".into(),
            format!("{:016x}", out.obs.span_fingerprint),
        ],
        vec![
            "metrics fingerprint".into(),
            format!("{:016x}", out.obs.metrics_fingerprint),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
}

fn cmd_sweep(args: &Args) {
    let sizes: Vec<usize> = args
        .get("--sizes")
        .unwrap_or("0,8,16,32,48,64,96,128")
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("invalid size {s:?}");
                usage()
            })
        })
        .collect();
    let mut base_args = build_config(args);
    base_args.policy = None;
    base_args.candidate_cap = None;
    eprintln!("running baseline …");
    let baseline = run_experiment(&base_args);
    let policy = match args.get("--policy") {
        None => PolicyKind::Mpc,
        Some(p) => p.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        }),
    };
    let mut rows = Vec::new();
    for &size in &sizes {
        let (label, pmax, over) = if size == 0 {
            ("0 (unmanaged)".to_string(), 1.0, 1.0)
        } else {
            let mut cfg = build_config(args);
            cfg.policy = Some(policy);
            cfg.candidate_cap = Some(size);
            eprintln!("running |A_candidate| = {size} …");
            let out = run_experiment(&cfg);
            let n = out.metrics.normalize_against(&baseline.metrics);
            (size.to_string(), n.p_max, n.overspend)
        };
        rows.push(vec![label, format!("{pmax:.4}"), format!("{over:.4}")]);
    }
    println!(
        "{}",
        render_table(&["|A_candidate|", "P_max (norm.)", "ΔP×T (norm.)"], &rows)
    );
}

fn cmd_policies() {
    let mut rows = Vec::new();
    for kind in PolicyKind::ALL {
        let family = match kind {
            PolicyKind::Hri | PolicyKind::HriC => "change-based",
            PolicyKind::Uniform | PolicyKind::RoundRobin => "baseline",
            _ => "state-based",
        };
        let paper = if PolicyKind::PAPER.contains(&kind) {
            "evaluated in paper"
        } else if PolicyKind::PAPER_FAMILY.contains(&kind) {
            "paper future work"
        } else {
            "related-work baseline"
        };
        rows.push(vec![kind.name().to_string(), family.into(), paper.into()]);
    }
    println!("{}", render_table(&["policy", "family", "status"], &rows));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        // No subcommand: show a tiny demo-scale run so `cargo run -p ppc`
        // does something useful.
        eprintln!("no subcommand; defaulting to: ppc run --nodes 8\n");
        let spec = ClusterSpec::mini(8);
        drop(spec);
        cmd_run(&Args::parse(&["--nodes".into(), "8".into()]));
        return;
    };
    let args = Args::parse(rest);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "sweep" => cmd_sweep(&args),
        "policies" => cmd_policies(),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage()
        }
    }
}
