//! A heterogeneous partition: 10-level X5670 nodes beside 7-level X5650
//! nodes under one power manager.
//!
//! Algorithm 1 works on per-node discrete ladders of any height: the
//! target-set output pairs each node with *its own* next level, and
//! recovery promotes each node back to *its own* top. This example runs a
//! mixed cluster under a tight provision and prints the per-partition
//! throttling picture.
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use ppc::cluster::output::render_table;
use ppc::cluster::spec::NodeGroup;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::node::spec::NodeSpec;
use ppc::simkit::SimDuration;

fn main() {
    let mut spec = ClusterSpec::mini(8);
    spec.extra_groups = vec![NodeGroup {
        spec: NodeSpec::tianhe_1a_x5650(),
        count: 8,
    }];
    spec.provision_fraction = 0.66;

    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 300,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::MpcC)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    let mut sim = ClusterSim::new(spec).with_manager(manager);
    sim.run_for(SimDuration::from_mins(40));

    let levels = sim.node_levels();
    let partition = |range: std::ops::Range<usize>, top: usize| {
        let slice = &levels[range];
        let at_top = slice.iter().filter(|l| l.index() == top).count();
        let mean: f64 = slice.iter().map(|l| l.index() as f64).sum::<f64>() / slice.len() as f64;
        (slice.len(), at_top, mean)
    };
    let (na, atop_a, mean_a) = partition(0..8, 9);
    let (nb, atop_b, mean_b) = partition(8..16, 6);

    println!("heterogeneous cluster: 8× X5670 (10 levels) + 8× X5650 (7 levels)\n");
    let rows = vec![
        vec![
            "X5670".to_string(),
            na.to_string(),
            "9".to_string(),
            format!("{atop_a}/{na}"),
            format!("{mean_a:.1}"),
        ],
        vec![
            "X5650".to_string(),
            nb.to_string(),
            "6".to_string(),
            format!("{atop_b}/{nb}"),
            format!("{mean_b:.1}"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "partition",
                "nodes",
                "top level",
                "at top now",
                "mean level now"
            ],
            &rows
        )
    );
    let stats = sim.manager().unwrap().stats();
    println!(
        "\n{} commands applied; cycles g/y/r = {}/{}/{}; peak {:.2} kW",
        sim.commands_applied(),
        stats.green_cycles,
        stats.yellow_cycles,
        stats.red_cycles,
        sim.true_power().max().unwrap() / 1e3,
    );
}
