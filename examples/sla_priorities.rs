//! SLA-critical jobs and the dynamic privileged set.
//!
//! The paper's architecture distinguishes privileged (uncontrollable)
//! nodes precisely for this: "some nodes may be running tasks that are
//! urgent, or of high priority … their degradation will have a
//! significant impact on system's performance, even cause violation of
//! SLA. They should not be degraded." Here, 20% of jobs are SLA-critical;
//! their nodes join `A_uncontrollable` for the job's lifetime and return
//! to the candidate pool afterwards.
//!
//! The run demonstrates the trade: critical jobs come out 100% lossless
//! even under a tight power provision, while the capping burden
//! concentrates on the normal jobs.
//!
//! ```text
//! cargo run --release --example sla_priorities
//! ```

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;
use ppc::workload::JobPriority;

fn main() {
    let mut cfg = ExperimentConfig::quick(Some(PolicyKind::MpcC), 16);
    cfg.spec.provision_fraction = 0.68; // tight: constant capping pressure
    cfg.spec.critical_job_fraction = 0.20;
    let out = run_experiment(&cfg);

    let split = |p: JobPriority| {
        let records: Vec<_> = out.records.iter().filter(|r| r.priority == p).collect();
        let n = records.len();
        let lossless = records
            .iter()
            .filter(|r| r.is_lossless(cfg.lossless_tolerance))
            .count();
        let perf: f64 = if n == 0 {
            1.0
        } else {
            records.iter().map(|r| r.performance_ratio()).sum::<f64>() / n as f64
        };
        let throttled: f64 = records.iter().map(|r| r.throttled_secs).sum();
        (n, lossless, perf, throttled)
    };
    let (cn, cl, cperf, cthr) = split(JobPriority::Critical);
    let (nn, nl, nperf, nthr) = split(JobPriority::Normal);

    println!("SLA priorities under a tight provision (MPC-C, 16 nodes):\n");
    let rows = vec![
        vec![
            "critical".to_string(),
            cn.to_string(),
            format!("{cl}/{cn}"),
            format!("{cperf:.4}"),
            format!("{cthr:.0} s"),
        ],
        vec![
            "normal".to_string(),
            nn.to_string(),
            format!("{nl}/{nn}"),
            format!("{nperf:.4}"),
            format!("{nthr:.0} s"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "priority",
                "jobs",
                "lossless",
                "mean performance",
                "throttled time"
            ],
            &rows
        )
    );
    println!(
        "\nwhole-system: Performance(cap) = {:.4}, P_max = {:.2} kW, red cycles = {}",
        out.metrics.performance,
        out.metrics.p_max_w / 1e3,
        out.red_cycles_measured
    );
    println!(
        "The power manager never touched a critical job's nodes: protecting\n\
         SLAs costs the normal jobs more throttling — the quantified version\n\
         of the paper's privileged-set design decision."
    );
}
