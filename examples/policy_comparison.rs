//! Compares all seven target-set selection policies on the same workload.
//!
//! A 32-node cluster with a deliberately tight power provision, so the
//! capping machinery is exercised hard and the policies' characters show:
//! MPC-family policies hit big jobs, LPC-family spread mild cuts over
//! small ones, BFP right-sizes the cut, and the HRI family punishes
//! whichever job is ramping.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;

fn main() {
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    let mut base = ExperimentConfig::quick(None, 32);
    base.spec.provision_fraction = 0.72;
    configs.push(base.clone());
    for policy in PolicyKind::ALL {
        let mut cfg = base.clone();
        cfg.policy = Some(policy);
        configs.push(cfg);
    }

    let baseline = run_experiment(&configs[0]);
    let mut rows = Vec::new();
    for cfg in &configs {
        let out = if cfg.policy.is_none() {
            baseline.clone()
        } else {
            run_experiment(cfg)
        };
        let m = &out.metrics;
        rows.push(vec![
            out.label.clone(),
            format!("{:.4}", m.performance),
            format!("{:.1}%", m.cplj_fraction * 100.0),
            format!("{:.2} kW", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            format!(
                "{:.0}%",
                if baseline.metrics.overspend > 0.0 {
                    (1.0 - m.overspend / baseline.metrics.overspend) * 100.0
                } else {
                    0.0
                }
            ),
            out.manager_stats
                .map(|s| s.commands_issued.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("policy comparison on a 32-node cluster (tight provision):\n");
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "Performance",
                "CPLJ",
                "P_max",
                "ΔP×T",
                "ΔP×T cut",
                "commands"
            ],
            &rows
        )
    );
}
