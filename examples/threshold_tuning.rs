//! Threshold learning in action (paper §III.A).
//!
//! Shows the P_peak/P_L/P_H trajectory: the learner starts from the
//! provision capability, adopts the observed peak when training ends, and
//! re-adjusts every `t_p` cycles as bigger spikes are observed — compared
//! against the frozen (administrator-set) mode the paper also allows.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use ppc::cluster::output::render_table;
use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::simkit::SimDuration;

fn build(frozen: bool) -> ClusterSim {
    let spec = ClusterSpec::mini(12);
    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 300, // 5 min
        t_p_cycles: 300,      // re-adjust every 5 min after that
        frozen_thresholds: frozen,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    ClusterSim::new(spec).with_manager(manager)
}

fn main() {
    let mut learned = build(false);
    let mut frozen = build(true);

    println!("threshold trajectory over 40 minutes (12-node cluster):\n");
    let mut rows = Vec::new();
    for minute in (0..=40).step_by(5) {
        if minute > 0 {
            learned.run_for(SimDuration::from_mins(5));
            frozen.run_for(SimDuration::from_mins(5));
        }
        let m = learned.manager().unwrap();
        let t = m.thresholds();
        let tf = frozen.manager().unwrap().thresholds();
        rows.push(vec![
            format!("{minute:>2} min"),
            if m.learner().in_training() {
                "training"
            } else {
                "live"
            }
            .to_string(),
            format!("{:.0} W", m.learner().observed_peak_w()),
            format!("{:.0} W", m.learner().p_peak_w()),
            format!("{:.0} W", t.p_low_w()),
            format!("{:.0} W", t.p_high_w()),
            format!("{:.0} / {:.0} W", tf.p_low_w(), tf.p_high_w()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "t",
                "phase",
                "observed peak",
                "P_peak basis",
                "P_L",
                "P_H",
                "frozen P_L / P_H",
            ],
            &rows
        )
    );
    let stats = learned.manager().unwrap().stats();
    println!(
        "\nlearned run: {} threshold adjustments, cycles g/y/r = {}/{}/{}",
        stats.threshold_adjustments, stats.green_cycles, stats.yellow_cycles, stats.red_cycles
    );
    println!(
        "The learned pair follows what the machine actually draws; the frozen\n\
         pair guards the provisioned feed regardless. Which one an operator\n\
         wants depends on whether the constraint is empirical (observed peaks)\n\
         or contractual (the feed rating) — the architecture supports both."
    );
}
