//! Renders an ASCII power trace of a capping event.
//!
//! Runs the same minutes of workload unmanaged and managed side by side
//! and draws both traces with the learned thresholds, so you can *see*
//! Algorithm 1 clip the excursion: the unmanaged trace rides through
//! P_L, the managed one is bent back down within a few control cycles.
//!
//! ```text
//! cargo run --release --example power_trace
//! ```

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::simkit::{SimDuration, TimeSeries};

const ROWS: usize = 16;
const COLS: usize = 96;

fn draw(trace: &TimeSeries, p_low: f64, p_high: f64, title: &str) {
    let vals = trace.values();
    let lo = trace.min().unwrap() * 0.98;
    let hi = trace.max().unwrap() * 1.02;
    let bucket = vals.len().div_ceil(COLS);
    // One column = max power over its bucket (peaks are what matter).
    let cols: Vec<f64> = vals
        .chunks(bucket)
        .map(|c| c.iter().copied().fold(f64::MIN, f64::max))
        .collect();
    let to_row = |p: f64| (((p - lo) / (hi - lo)) * (ROWS - 1) as f64).round() as usize;
    println!("{title}  [{:.1} kW .. {:.1} kW]", lo / 1e3, hi / 1e3);
    for row in (0..ROWS).rev() {
        let mut line = String::with_capacity(cols.len() + 8);
        let threshold_here =
            |t: f64| (0.0..1.0).contains(&((t - lo) / (hi - lo))) && to_row(t) == row;
        let marker = if threshold_here(p_high) {
            "PH "
        } else if threshold_here(p_low) {
            "PL "
        } else {
            "   "
        };
        line.push_str(marker);
        for &c in &cols {
            let r = to_row(c);
            line.push(if r == row {
                '*'
            } else if threshold_here(p_high) || threshold_here(p_low) {
                '-'
            } else if r > row {
                '|'
            } else {
                ' '
            });
        }
        println!("{line}");
    }
    println!();
}

fn main() {
    let window = SimDuration::from_mins(40);
    let spec = ClusterSpec::mini(16);

    let mut unmanaged = ClusterSim::new(spec.clone());
    unmanaged.run_for(window);

    let sets = NodeSets::new(spec.node_ids(), []);
    let config = ManagerConfig {
        training_cycles: 300, // 5-minute training window
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");
    let mut managed = ClusterSim::new(spec).with_manager(manager);
    managed.run_for(window);

    let t = managed.manager().unwrap().thresholds();
    draw(
        unmanaged.true_power(),
        t.p_low_w(),
        t.p_high_w(),
        "UNMANAGED (same workload, same seed)",
    );
    draw(
        managed.true_power(),
        t.p_low_w(),
        t.p_high_w(),
        "MANAGED with MPC (thresholds learned in the first 5 min)",
    );
    println!(
        "managed run: {} throttling commands, states g/y/r = {}/{}/{}",
        managed.commands_applied(),
        managed.manager().unwrap().stats().green_cycles,
        managed.manager().unwrap().stats().yellow_cycles,
        managed.manager().unwrap().stats().red_cycles,
    );
}
