//! Capacity planning as a what-if admission matrix.
//!
//! The paper's economic motivation: provisioning a machine room for the
//! theoretical maximal power (`P_thy`) wastes capital, because synchronized
//! all-device peaks never happen. The question an operator actually asks is
//! two-dimensional — *under provision fraction f, can the cluster absorb k
//! more jobs without violating the cap?* — and re-simulating every cell
//! from scratch throws away the shared history.
//!
//! This example builds **one** base simulation, advances it to a busy
//! steady state, snapshots it, and answers the whole grid as branched
//! what-if queries: each cell is `Compound[SetCap(f·P_thy),
//! AdmitJobs(k×CG.C)]` projected over the same horizon, all against the
//! same snapshot, fanned out over the worker pool. The result is the
//! admission matrix an operator would size the feed with — plus the
//! projected peak behind each verdict.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use ppc::cluster::experiment::ExperimentConfig;
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;
use ppc::whatif::{BaseScenario, JobSpec, WhatIfEngine, WhatIfQuery, WhatIfRequest};
use ppc::workload::{Class, NpbApp};

const FRACTIONS: [f64; 5] = [0.90, 0.80, 0.72, 0.66, 0.60];
const EXTRA_JOBS: [usize; 4] = [0, 1, 2, 4];
const WARMUP_TICKS: u64 = 240;
const HORIZON_TICKS: u64 = 120;

fn main() {
    // One base run: a 16-node MPC-managed cluster with administrator-mode
    // thresholds (the feed is the constraint being planned, so P_H/P_L
    // pin to the provision instead of learning from observed peaks).
    let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 16);
    cfg.frozen_thresholds = true;
    let p_thy = cfg.spec.theoretical_max_w();
    let scenario = BaseScenario::new(cfg, WARMUP_TICKS);
    let snapshot = scenario.materialize();
    println!(
        "base: 16-node MPC cluster at tick {} ({} running, {} queued); P_thy = {:.1} kW",
        snapshot.tick(),
        snapshot.base().running_jobs(),
        snapshot.base().queued_jobs(),
        p_thy / 1e3,
    );

    // The grid, flattened into one batch: every cell branches the same
    // snapshot, so the answers are mutually comparable by construction.
    let job = JobSpec {
        app: NpbApp::Cg,
        class: Class::C,
        nprocs: 24,
        critical: false,
    };
    let requests: Vec<WhatIfRequest> = FRACTIONS
        .iter()
        .flat_map(|&fraction| {
            EXTRA_JOBS.iter().map(move |&k| {
                WhatIfRequest::new(
                    WhatIfQuery::Compound {
                        steps: vec![
                            WhatIfQuery::SetCap {
                                provision_w: fraction * p_thy,
                            },
                            WhatIfQuery::AdmitJobs { jobs: vec![job; k] },
                        ],
                    },
                    HORIZON_TICKS,
                )
            })
        })
        .collect();
    let mut engine = WhatIfEngine::new(snapshot);
    let answers = engine.run_batch(&requests);

    // Admission matrix: rows = provision fraction, columns = extra jobs.
    // A cell shows the verdict and the projected peak behind it.
    let mut rows = Vec::new();
    for (i, &fraction) in FRACTIONS.iter().enumerate() {
        let mut row = vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.1} kW", fraction * p_thy / 1e3),
        ];
        for (j, _) in EXTRA_JOBS.iter().enumerate() {
            let a = &answers[i * EXTRA_JOBS.len() + j];
            let verdict = if a.admit { "admit" } else { "DENY" };
            row.push(format!("{verdict} ({:.1} kW)", a.peak_power_w / 1e3));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["provision / P_thy", "P_Max"]
        .iter()
        .map(|h| h.to_string())
        .chain(EXTRA_JOBS.iter().map(|k| format!("+{k} jobs")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!(
        "\nadmission matrix ({} what-if branches, horizon {} ticks, peak projected):\n",
        answers.len(),
        HORIZON_TICKS
    );
    println!("{}", render_table(&header_refs, &rows));
    println!(
        "\nReading the table: walk down a column until admit flips to DENY —\n\
         that row is the tightest provision which still absorbs that load\n\
         (a DENY cell projects Red cycles or jobs stuck in the queue over\n\
         the horizon). Every cell branched the same live snapshot; nothing\n\
         was re-simulated from scratch."
    );
}
