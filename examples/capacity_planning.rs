//! Capacity planning: how far below the theoretical peak can the power
//! provision go?
//!
//! The paper's economic motivation: provisioning a machine room for the
//! theoretical maximal power (`P_thy`) wastes capital, because synchronized
//! all-device peaks never happen. This example sweeps the provision
//! capability from 90% down to 60% of `P_thy` and shows what capping (MPC)
//! costs in performance at each point — the curve an operator would use to
//! size the feed.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;

fn main() {
    let mut rows = Vec::new();
    for fraction in [0.90, 0.80, 0.72, 0.66, 0.60] {
        let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 16);
        cfg.spec.provision_fraction = fraction;
        // The feed is the hard constraint being planned, so the thresholds
        // must protect *it*: pin P_H/P_L to 93%/84% of the provision
        // (administrator mode) instead of learning them from observed peaks.
        cfg.frozen_thresholds = true;
        let out = run_experiment(&cfg);
        let m = &out.metrics;
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.1} kW", out.provision_w / 1e3),
            format!("{:.4}", m.performance),
            format!("{:.1}%", (1.0 - m.performance) * 100.0),
            format!("{:.5}", m.overspend),
            out.red_cycles_measured.to_string(),
            out.manager_stats
                .map(|s| s.yellow_cycles.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!("capacity planning on a 16-node cluster (MPC policy):\n");
    println!(
        "{}",
        render_table(
            &[
                "provision / P_thy",
                "P_Max",
                "Performance",
                "perf loss",
                "ΔP×T",
                "red cycles",
                "yellow cycles",
            ],
            &rows
        )
    );
    println!(
        "\nReading the table: each step down in provision buys cheaper power\n\
         infrastructure; the Performance column is what it costs. The knee —\n\
         where loss starts growing quickly and red cycles appear — is the\n\
         economic sizing point (the paper's Operability assumption in numbers)."
    );
}
