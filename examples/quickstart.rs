//! Quickstart: cap a small cluster's power in ~30 lines.
//!
//! Builds an 8-node cluster running a random NPB-like job mix, attaches a
//! power manager with the paper's MPC policy and learned thresholds, runs
//! half a simulated hour and prints what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppc::cluster::{ClusterSim, ClusterSpec};
use ppc::core::{ManagerConfig, NodeSets, PolicyKind, PowerManager};
use ppc::simkit::SimDuration;

fn main() {
    // 1. Describe the cluster: 8 Tianhe-1A-style nodes (2× Xeon X5670,
    //    ten DVFS steps from 1.60 to 2.93 GHz).
    let spec = ClusterSpec::mini(8);

    // 2. Classify the nodes: all eight are controllable candidates.
    let sets = NodeSets::new(spec.node_ids(), []);

    // 3. Configure the manager: provision capability as the initial
    //    P_peak, thresholds learned as 93%/84% of the observed peak after
    //    a 5-minute training period, T_g = 10 cycles, MPC selection.
    let config = ManagerConfig {
        training_cycles: 300,
        ..ManagerConfig::paper_defaults(spec.provision_w(), PolicyKind::Mpc)
    };
    let manager = PowerManager::new(config, sets).expect("valid config");

    // 4. Run.
    let mut sim = ClusterSim::new(spec).with_manager(manager);
    sim.run_for(SimDuration::from_mins(30));

    // 5. Report.
    let trace = sim.true_power();
    let manager = sim.manager().expect("attached above");
    let t = manager.thresholds();
    println!("simulated 30 min on 8 nodes");
    println!(
        "  peak power {:.0} W, mean {:.0} W",
        trace.max().unwrap_or(0.0),
        trace.time_weighted_mean().unwrap_or(0.0)
    );
    println!(
        "  learned P_peak {:.0} W -> P_L {:.0} W, P_H {:.0} W",
        manager.learner().p_peak_w(),
        t.p_low_w(),
        t.p_high_w()
    );
    let stats = manager.stats();
    println!(
        "  control cycles: {} green / {} yellow / {} red, {} throttling commands applied",
        stats.green_cycles,
        stats.yellow_cycles,
        stats.red_cycles,
        sim.commands_applied()
    );
    println!(
        "  jobs finished: {} (cluster {:.0}% allocated at end)",
        sim.finished().len(),
        sim.utilization() * 100.0
    );
}
