//! Failure injection: how much sensing error — and how much outright node
//! failure — can the architecture absorb?
//!
//! The Observability assumption only asks for "sufficient accuracy". The
//! first table degrades the sensing layer — facility-meter noise and
//! dropped agent samples — and watches the capping quality respond. The
//! architecture degrades gracefully: the meter's noise floor shifts the
//! thresholds slightly; agent dropouts make the per-job power view stale
//! but the hold-last-estimate agents keep selection workable.
//!
//! The second table goes past sensing into hard faults, driven by the
//! deterministic fault engine (`ppc::faults`): node crashes with timed
//! reboots, frozen DVFS actuators, and aggregation-subtree partitions.
//! Crashed nodes are evicted from scheduling and from `A_candidate`, their
//! jobs requeue, and they rejoin at the lowest DVFS level; frozen
//! actuators fail their commands into the retry path; partitions starve
//! telemetry until the manager falls back to conservative capping. The
//! availability column is delivered node-hours over the theoretical total.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;
use ppc::faults::{FaultInjection, FaultRates, FaultSchedule};
use ppc::simkit::RngFactory;
use ppc::telemetry::NoiseModel;

fn sensing_sweep() {
    let scenarios: Vec<(&str, NoiseModel, NoiseModel)> = vec![
        ("clean sensors", NoiseModel::NONE, NoiseModel::NONE),
        ("1% meter noise", NoiseModel::METER_1PCT, NoiseModel::NONE),
        (
            "5% meter noise",
            NoiseModel {
                relative_std: 0.05,
                dropout_prob: 0.0,
            },
            NoiseModel::NONE,
        ),
        (
            "20% agent dropout",
            NoiseModel::NONE,
            NoiseModel {
                relative_std: 0.0,
                dropout_prob: 0.20,
            },
        ),
        (
            "noisy meter + flaky agents",
            NoiseModel {
                relative_std: 0.03,
                dropout_prob: 0.01,
            },
            NoiseModel {
                relative_std: 0.05,
                dropout_prob: 0.30,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, meter, agent) in scenarios {
        let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 16);
        cfg.spec.provision_fraction = 0.72;
        cfg.spec.meter_noise = meter;
        cfg.spec.agent_noise = agent;
        let out = run_experiment(&cfg);
        let m = &out.metrics;
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", m.performance),
            format!("{:.2} kW", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            out.red_cycles_measured.to_string(),
            out.manager_stats
                .map(|s| s.commands_issued.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!("sensing-failure injection on a 16-node cluster (MPC):\n");
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "Performance",
                "P_max",
                "ΔP×T",
                "red",
                "commands"
            ],
            &rows
        )
    );
}

fn fault_sweep() {
    let scenarios: Vec<(&str, FaultRates)> = vec![
        ("no faults", FaultRates::default()),
        (
            "crashes (3/node-h)",
            FaultRates {
                reboot_mean_secs: 90.0,
                ..FaultRates::crashes(3.0)
            },
        ),
        (
            "frozen actuators",
            FaultRates {
                hang_per_node_hour: 6.0,
                hang_mean_secs: 120.0,
                ..FaultRates::default()
            },
        ),
        (
            "subtree partitions",
            FaultRates {
                partition_per_hour: 10.0,
                partition_mean_secs: 90.0,
                partition_width: 4,
                ..FaultRates::default()
            },
        ),
        (
            "everything at once",
            FaultRates {
                crash_per_node_hour: 3.0,
                reboot_mean_secs: 90.0,
                hang_per_node_hour: 4.0,
                hang_mean_secs: 90.0,
                silence_per_node_hour: 6.0,
                silence_mean_secs: 45.0,
                partition_per_hour: 8.0,
                partition_mean_secs: 60.0,
                partition_width: 4,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, rates) in scenarios {
        let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 16);
        cfg.spec.provision_fraction = 0.72;
        if rates != FaultRates::default() {
            let horizon = cfg.training + cfg.measurement;
            let schedule = FaultSchedule::generate(
                &rates,
                cfg.spec.total_nodes(),
                horizon,
                &RngFactory::new(cfg.spec.seed),
            );
            cfg.faults = Some(FaultInjection::new(schedule));
        }
        let out = run_experiment(&cfg);
        let m = &out.metrics;
        let a = out.availability.unwrap_or_default();
        let availability = if out.availability.is_some() {
            a.availability
        } else {
            1.0
        };
        rows.push(vec![
            label.to_string(),
            format!("{availability:.4}"),
            format!("{}/{}", a.jobs_requeued, a.jobs_failed),
            format!("{}", a.commands_failed),
            format!("{:.1}%", a.conservative_fraction * 100.0),
            format!("{:.4}", m.performance),
            format!("{:.2} kW", m.p_max_w / 1e3),
            out.red_cycles_measured.to_string(),
        ]);
    }
    println!("\nhard-fault injection on the same cluster (MPC):\n");
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "availability",
                "requeued/failed",
                "cmd fail",
                "conservative",
                "Performance",
                "P_max",
                "red",
            ],
            &rows
        )
    );
}

fn main() {
    sensing_sweep();
    fault_sweep();
}
