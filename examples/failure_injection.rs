//! Failure injection: how much sensing error can the architecture absorb?
//!
//! The Observability assumption only asks for "sufficient accuracy". This
//! example degrades the sensing layer — facility-meter noise and dropped
//! agent samples — and watches the capping quality respond. The
//! architecture degrades gracefully: the meter's noise floor shifts the
//! thresholds slightly; agent dropouts make the per-job power view stale
//! but the hold-last-estimate agents keep selection workable.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use ppc::cluster::experiment::{run_experiment, ExperimentConfig};
use ppc::cluster::output::render_table;
use ppc::core::PolicyKind;
use ppc::telemetry::NoiseModel;

fn main() {
    let scenarios: Vec<(&str, NoiseModel, NoiseModel)> = vec![
        ("clean sensors", NoiseModel::NONE, NoiseModel::NONE),
        ("1% meter noise", NoiseModel::METER_1PCT, NoiseModel::NONE),
        (
            "5% meter noise",
            NoiseModel {
                relative_std: 0.05,
                dropout_prob: 0.0,
            },
            NoiseModel::NONE,
        ),
        (
            "20% agent dropout",
            NoiseModel::NONE,
            NoiseModel {
                relative_std: 0.0,
                dropout_prob: 0.20,
            },
        ),
        (
            "noisy meter + flaky agents",
            NoiseModel {
                relative_std: 0.03,
                dropout_prob: 0.01,
            },
            NoiseModel {
                relative_std: 0.05,
                dropout_prob: 0.30,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, meter, agent) in scenarios {
        let mut cfg = ExperimentConfig::quick(Some(PolicyKind::Mpc), 16);
        cfg.spec.provision_fraction = 0.72;
        cfg.spec.meter_noise = meter;
        cfg.spec.agent_noise = agent;
        let out = run_experiment(&cfg);
        let m = &out.metrics;
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", m.performance),
            format!("{:.2} kW", m.p_max_w / 1e3),
            format!("{:.5}", m.overspend),
            out.red_cycles_measured.to_string(),
            out.manager_stats
                .map(|s| s.commands_issued.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!("sensing-failure injection on a 16-node cluster (MPC):\n");
    println!(
        "{}",
        render_table(
            &["scenario", "Performance", "P_max", "ΔP×T", "red", "commands"],
            &rows
        )
    );
}
